"""Tests for the material-model subsystem (repro.sem.materials):
broadcasting, validation, Christoffel wave speeds, and the equivalence
of the material path with the legacy kwargs path on the assemblers."""

import warnings

import numpy as np
import pytest

from repro.mesh import uniform_grid
from repro.sem import ElasticSem2D, ElasticSem3D, Sem2D
from repro.sem.materials import (
    AnisotropicElastic,
    IsotropicAcoustic,
    IsotropicElastic,
    hexagonal_stiffness,
    isotropic_stiffness,
    rotate_voigt,
    rotation_about_y,
    tensor_to_voigt,
    unit_directions,
    voigt_to_tensor,
)
from repro.util.errors import SolverError


class TestBroadcasting:
    def test_scalars_expand_to_element_arrays(self):
        mat = IsotropicElastic(lam=2.0, mu=1.0, rho=1.5).expand(7)
        for a in (mat.lam, mat.mu, mat.rho):
            assert a.shape == (7,)
        assert mat.n_elements == 7
        assert IsotropicElastic().n_elements is None

    def test_per_element_arrays_pass_through(self):
        lam = np.arange(1.0, 6.0)
        mat = IsotropicElastic(lam=lam, mu=1.0).expand(5)
        assert np.array_equal(mat.lam, lam)
        assert mat.lam is not lam  # expanded materials own their arrays

    def test_wrong_length_rejected(self):
        with pytest.raises(SolverError):
            IsotropicElastic(lam=np.ones(4)).expand(5)

    def test_constant_voigt_expands(self):
        mat = AnisotropicElastic(isotropic_stiffness(2.0, 1.0, 3)).expand(6)
        assert mat.C.shape == (6, 6, 6)
        assert mat.rho.shape == (6,)


class TestValidation:
    def test_acoustic_requires_positive_speed_and_density(self):
        with pytest.raises(SolverError):
            IsotropicAcoustic(c=-1.0)
        with pytest.raises(SolverError):
            IsotropicAcoustic(c=1.0, rho=0.0)

    def test_elastic_fluid_limit_mu_zero_allowed(self):
        mat = IsotropicElastic(lam=2.0, mu=0.0)
        assert mat.s_velocity() == 0.0
        assert mat.max_velocity() == pytest.approx(np.sqrt(2.0))

    def test_elastic_rejects_negative_mu_and_bad_moduli(self):
        with pytest.raises(SolverError):
            IsotropicElastic(mu=-1.0)
        with pytest.raises(SolverError):
            IsotropicElastic(lam=-3.0, mu=1.0)  # lam + 2mu <= 0
        with pytest.raises(SolverError):
            IsotropicElastic(rho=0.0)

    def test_anisotropic_rejects_asymmetric_stiffness(self):
        C = isotropic_stiffness(2.0, 1.0, 2)
        C[0, 1] += 0.5
        with pytest.raises(SolverError):
            AnisotropicElastic(C)

    def test_anisotropic_rejects_indefinite_stiffness(self):
        C = isotropic_stiffness(2.0, 1.0, 2)
        C[2, 2] = -1.0
        with pytest.raises(SolverError):
            AnisotropicElastic(C)

    def test_anisotropic_rejects_bad_voigt_shape(self):
        with pytest.raises(SolverError):
            AnisotropicElastic(np.eye(4))


class TestVoigt:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_tensor_roundtrip(self, dim):
        rng = np.random.default_rng(dim)
        nv = 3 if dim == 2 else 6
        A = rng.standard_normal((nv, nv))
        C = A @ A.T + 3 * np.eye(nv)
        c4 = voigt_to_tensor(C, dim)
        # minor and major symmetries of the expanded tensor
        assert np.allclose(c4, c4.transpose(1, 0, 2, 3))
        assert np.allclose(c4, c4.transpose(0, 1, 3, 2))
        assert np.allclose(c4, c4.transpose(2, 3, 0, 1))
        assert np.allclose(tensor_to_voigt(c4, dim), C)

    def test_isotropic_stiffness_tensor_identity(self):
        lam, mu = 2.3, 1.1
        c4 = voigt_to_tensor(isotropic_stiffness(lam, mu, 3), 3)
        d = np.eye(3)
        expect = (
            lam * np.einsum("ij,kl->ijkl", d, d)
            + mu * (np.einsum("ik,jl->ijkl", d, d) + np.einsum("il,jk->ijkl", d, d))
        )
        assert np.allclose(c4, expect)

    def test_rotation_leaves_isotropy_invariant(self):
        C = isotropic_stiffness(2.0, 1.0, 3)
        R = rotation_about_y(0.7)
        assert np.allclose(rotate_voigt(C, R), C)

    def test_rotation_rejects_improper_matrix(self):
        with pytest.raises(SolverError):
            rotate_voigt(isotropic_stiffness(2.0, 1.0, 3), -np.eye(3))


class TestChristoffel:
    def test_isotropic_speeds_are_p_and_s_in_every_direction(self):
        lam, mu, rho = 2.0, 1.0, 1.25
        iso = IsotropicElastic(lam, mu, rho)
        for dim in (2, 3):
            mat = iso.as_anisotropic(dim)
            v = mat.wave_speeds(unit_directions(dim, 40))
            assert np.allclose(v[..., -1], iso.p_velocity())
            assert np.allclose(v[..., 0], iso.s_velocity())
            assert np.allclose(mat.max_velocity(), iso.p_velocity())

    def test_hexagonal_axis_speeds(self):
        """qP along the symmetry axis (z) is sqrt(c33/rho), along the
        basal plane sqrt(c11/rho); qS along z is sqrt(c44/rho)."""
        c11, c33, c13, c44, c66, rho = 20.0, 13.0, 5.0, 4.0, 5.0, 2.0
        mat = AnisotropicElastic(hexagonal_stiffness(c11, c33, c13, c44, c66), rho=rho)
        v = mat.wave_speeds(np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]))
        assert v[0, -1] == pytest.approx(np.sqrt(c33 / rho))
        assert v[0, 0] == pytest.approx(np.sqrt(c44 / rho))
        assert v[1, -1] == pytest.approx(np.sqrt(c11 / rho))

    def test_max_velocity_is_rotation_invariant(self):
        mat = AnisotropicElastic(hexagonal_stiffness(20.0, 13.0, 5.0, 4.0, 5.0))
        tilted = mat.rotate(rotation_about_y(np.deg2rad(37.0)))
        assert tilted.max_velocity() == pytest.approx(mat.max_velocity(), rel=1e-3)

    def test_heterogeneous_max_velocity_per_element(self):
        C = np.stack(
            [isotropic_stiffness(2.0, 1.0, 2), isotropic_stiffness(8.0, 4.0, 2)]
        )
        mat = AnisotropicElastic(C, rho=1.0).expand(2)
        assert np.allclose(mat.max_velocity(), [2.0, 4.0])


class TestAssemblerMaterialPath:
    """The material= path must be bit-identical to the legacy kwargs."""

    def test_elastic2d_bit_identical(self):
        mesh = uniform_grid((3, 3), (1.0, 1.2))
        rng = np.random.default_rng(0)
        lam = 2.0 + rng.random(mesh.n_elements)
        mu = 1.0 + rng.random(mesh.n_elements)
        rho = 1.0 + rng.random(mesh.n_elements)
        with pytest.warns(DeprecationWarning):
            legacy = ElasticSem2D(mesh, order=3, lam=lam, mu=mu, rho=rho)
        material = ElasticSem2D(
            mesh, order=3, material=IsotropicElastic(lam=lam, mu=mu, rho=rho)
        )
        assert np.array_equal(legacy.M, material.M)
        assert (legacy.K != material.K).nnz == 0
        assert (legacy.A != material.A).nnz == 0

    def test_elastic3d_bit_identical(self):
        mesh = uniform_grid((2, 2, 2))
        with pytest.warns(DeprecationWarning):
            legacy = ElasticSem3D(mesh, order=2, lam=2.0, mu=1.0, rho=1.3)
        material = ElasticSem3D(
            mesh, order=2, material=IsotropicElastic(lam=2.0, mu=1.0, rho=1.3)
        )
        assert np.array_equal(legacy.M, material.M)
        assert (legacy.A != material.A).nnz == 0

    def test_legacy_kwargs_emit_deprecation_warning(self):
        """The loose constitutive kwargs warn (pointing at the material
        layer / MaterialSpec) on every assembler family that keeps them."""
        mesh2 = uniform_grid((2, 2))
        with pytest.warns(DeprecationWarning, match="MaterialSpec"):
            ElasticSem2D(mesh2, order=2, lam=2.0)
        with pytest.warns(DeprecationWarning, match="IsotropicElastic"):
            ElasticSem2D(mesh2, order=2, mu=1.5)
        with pytest.warns(DeprecationWarning, match="rho="):
            Sem2D(mesh2, order=2, rho=1.3)
        with pytest.warns(DeprecationWarning, match="lam=/mu=/rho="):
            ElasticSem3D(uniform_grid((2, 2, 2)), order=1, rho=2.0)

    def test_material_path_does_not_warn(self):
        """material= (and the bare default) must stay warning-free."""
        mesh = uniform_grid((2, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ElasticSem2D(mesh, order=2, material=IsotropicElastic(lam=2.0, mu=1.0))
            ElasticSem2D(mesh, order=2)
            Sem2D(mesh, order=2)
            Sem2D(mesh, order=2, material=IsotropicAcoustic(c=mesh.c, rho=1.3))

    def test_material_and_kwargs_are_mutually_exclusive(self):
        mesh = uniform_grid((2, 2))
        with pytest.raises(SolverError):
            ElasticSem2D(mesh, lam=2.0, material=IsotropicElastic())
        with pytest.raises(SolverError):
            Sem2D(mesh, rho=2.0, material=IsotropicAcoustic(c=mesh.c))

    def test_assembler_rejects_wrong_material_type(self):
        mesh = uniform_grid((2, 2))
        with pytest.raises(SolverError):
            Sem2D(mesh, material=IsotropicElastic())
        with pytest.raises(SolverError):
            ElasticSem2D(mesh, material=IsotropicAcoustic(c=1.0))

    def test_fluid_elements_inside_elastic_mesh(self):
        """mu = 0 elements build, have zero S speed, and level
        assignment through the material's max (P) speed works."""
        from repro.core import assign_levels

        mesh = uniform_grid((4, 4))
        mu = np.full(mesh.n_elements, 1.0)
        mu[::3] = 0.0  # fluid stripes
        sem = ElasticSem2D(mesh, order=2, material=IsotropicElastic(lam=2.0, mu=mu))
        assert np.all(sem.s_velocity()[::3] == 0.0)
        assert np.all(sem.max_velocity() > 0)
        levels = assign_levels(mesh, assembler=sem)
        assert levels.level.shape == (mesh.n_elements,)
        # the S speed is not a valid level driver on fluid elements
        with pytest.raises(SolverError):
            assign_levels(mesh, velocity=sem.s_velocity())
