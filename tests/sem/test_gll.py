"""Tests for GLL quadrature and Lagrange basis utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sem import gll_points_weights, lagrange_basis, lagrange_derivative_matrix
from repro.util.errors import SolverError


class TestPointsWeights:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6, 8])
    def test_endpoints_and_count(self, order):
        pts, wts = gll_points_weights(order)
        assert len(pts) == order + 1
        assert pts[0] == -1.0 and pts[-1] == 1.0
        assert np.all(np.diff(pts) > 0)

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6])
    def test_weights_sum_to_two(self, order):
        _, wts = gll_points_weights(order)
        assert wts.sum() == pytest.approx(2.0)

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_exact_for_degree_2n_minus_1(self, order):
        """GLL integrates polynomials up to degree 2*order - 1 exactly."""
        pts, wts = gll_points_weights(order)
        for deg in range(2 * order):
            quad = float(np.sum(wts * pts**deg))
            exact = 0.0 if deg % 2 else 2.0 / (deg + 1)
            assert quad == pytest.approx(exact, abs=1e-12), (order, deg)

    def test_not_exact_for_degree_2n(self):
        """Degree 2N fails: the mass-lumping inexactness of SEM."""
        order = 4
        pts, wts = gll_points_weights(order)
        deg = 2 * order
        quad = float(np.sum(wts * pts**deg))
        assert abs(quad - 2.0 / (deg + 1)) > 1e-6

    def test_symmetry(self):
        pts, wts = gll_points_weights(5)
        assert np.allclose(pts, -pts[::-1])
        assert np.allclose(wts, wts[::-1])

    def test_rejects_order_zero(self):
        with pytest.raises(SolverError):
            gll_points_weights(0)

    def test_order4_known_values(self):
        pts, _ = gll_points_weights(4)
        assert pts[2] == pytest.approx(0.0, abs=1e-14)
        assert pts[1] == pytest.approx(-np.sqrt(3.0 / 7.0))


class TestDerivativeMatrix:
    @pytest.mark.parametrize("order", [1, 2, 4, 6])
    def test_kills_constants(self, order):
        D = lagrange_derivative_matrix(order)
        assert np.allclose(D @ np.ones(order + 1), 0.0, atol=1e-12)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_differentiates_monomials_exactly(self, order):
        pts, _ = gll_points_weights(order)
        D = lagrange_derivative_matrix(order)
        for deg in range(1, order + 1):
            assert np.allclose(D @ pts**deg, deg * pts ** (deg - 1), atol=1e-10)


class TestLagrangeBasis:
    def test_cardinal_property(self):
        pts, _ = gll_points_weights(4)
        B = lagrange_basis(pts, pts)
        assert np.allclose(B, np.eye(5), atol=1e-12)

    def test_partition_of_unity(self):
        pts, _ = gll_points_weights(3)
        x = np.linspace(-1, 1, 17)
        B = lagrange_basis(pts, x)
        assert np.allclose(B.sum(axis=1), 1.0, atol=1e-12)

    @given(st.floats(-1.0, 1.0))
    def test_interpolates_cubic_exactly(self, x):
        pts, _ = gll_points_weights(3)
        f = lambda t: t**3 - 2 * t
        B = lagrange_basis(pts, np.array([x]))
        assert float((B @ f(pts))[0]) == pytest.approx(f(x), abs=1e-10)
