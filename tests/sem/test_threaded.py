"""Threaded kernel tier: OpenMP fused kernels and the chunked NumPy
thread pool agree with their serial counterparts.

Both threaded paths change only summation order (per-thread partial
scatters reduced in a fixed order), so results are documented to match
serial within 1e-12 *relative* — in practice they agree to the last few
bits, and for a fixed thread count repeated applies are deterministic.
"""

import numpy as np
import pytest

from repro.mesh import uniform_grid
from repro.sem import ElasticSem2D, ElasticSem3D, Sem2D, Sem3D, fused
from repro.sem.anisotropic import AnisotropicElasticSemND
from repro.sem.matfree import describe_tier, resolve_threads
from repro.util.errors import SolverError

TOL = 1e-12

OMP = fused.available() and fused.omp_enabled()


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


def _assemblers():
    mesh2 = uniform_grid((5, 4), (1.0, 1.3))
    mesh3 = uniform_grid((3, 3, 2))
    rng = np.random.default_rng(0)
    nv = 6
    A = rng.standard_normal((mesh3.n_elements, nv, nv))
    C3 = A @ A.transpose(0, 2, 1) + nv * np.eye(nv)
    return [
        ("acoustic2", Sem2D(mesh2, order=4, dirichlet=True)),
        ("acoustic3", Sem3D(mesh3, order=3)),
        ("elastic2", ElasticSem2D(mesh2, order=3)),
        ("elastic3", ElasticSem3D(mesh3, order=2, dirichlet=True)),
        ("aniso3", AnisotropicElasticSemND(mesh3, order=2, C=C3)),
    ]


class TestResolveThreads:
    def test_none_is_serial(self):
        assert resolve_threads(None) == 1

    def test_explicit_count(self):
        assert resolve_threads(3) == 3

    def test_zero_auto_detects(self):
        n = resolve_threads(0)
        assert n >= 1

    def test_negative_rejected(self):
        with pytest.raises(SolverError, match="threads must be >= 0"):
            resolve_threads(-2)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "5")
        assert resolve_threads(None) == 5
        assert resolve_threads(2) == 5

    def test_env_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "many")
        with pytest.raises(SolverError, match="REPRO_THREADS"):
            resolve_threads(None)


class TestNumpyPoolTier:
    """The chunked ThreadPoolExecutor path needs no compiler at all."""

    @pytest.mark.parametrize("name,sem", _assemblers())
    def test_full_apply_matches_serial(self, name, sem):
        rng = np.random.default_rng(1)
        u = rng.standard_normal(sem.n_dof)
        ref = sem.operator("matfree", use_fused=False) @ u
        op = sem.operator("matfree", use_fused=False, threads=2)
        assert op.tier == "numpy-threads:2"
        assert _rel_err(op @ u, ref) < TOL, name

    @pytest.mark.parametrize("name,sem", _assemblers()[:2])
    def test_restricted_apply_matches_serial(self, name, sem):
        rng = np.random.default_rng(2)
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=max(1, sem.n_dof // 3), replace=False)
        ref = sem.operator("matfree", use_fused=False).restrict(cols).apply(u)
        op = sem.operator("matfree", use_fused=False, threads=2)
        assert _rel_err(op.restrict(cols).apply(u), ref) < TOL, name

    def test_deterministic_across_applies(self):
        sem = Sem2D(uniform_grid((5, 4)), order=3)
        op = sem.operator("matfree", use_fused=False, threads=2)
        u = np.random.default_rng(3).standard_normal(sem.n_dof)
        z = op @ u
        for _ in range(3):
            assert np.array_equal(op @ u, z)

    def test_tiny_workload_runs_serial(self):
        sem = Sem2D(uniform_grid((1, 1)), order=2)
        op = sem.operator("matfree", use_fused=False, threads=8)
        assert op.tier == "numpy"  # 1 element < 2 * 8 -> serial


@pytest.mark.skipif(not OMP, reason="fused kernels without OpenMP")
class TestOpenMPFusedTier:
    @pytest.mark.parametrize("name,sem", _assemblers())
    @pytest.mark.parametrize("threads", [2, 3])
    def test_full_apply_matches_serial_fused_and_numpy(self, name, sem, threads):
        rng = np.random.default_rng(4)
        u = rng.standard_normal(sem.n_dof)
        ref_np = sem.operator("matfree", use_fused=False) @ u
        ref_fused = sem.operator("matfree", use_fused=True) @ u
        op = sem.operator("matfree", use_fused=True, threads=threads)
        assert op.tier == f"fused+openmp:{threads}"
        z = op @ u
        assert _rel_err(z, ref_fused) < TOL, name
        assert _rel_err(z, ref_np) < TOL, name

    @pytest.mark.parametrize("name,sem", _assemblers())
    def test_restricted_apply_matches_serial(self, name, sem):
        rng = np.random.default_rng(5)
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=max(1, sem.n_dof // 3), replace=False)
        ref = sem.operator("matfree", use_fused=True).restrict(cols).apply(u)
        op = sem.operator("matfree", use_fused=True, threads=2)
        assert _rel_err(op.restrict(cols).apply(u), ref) < TOL, name

    def test_deterministic_across_applies(self):
        sem = Sem3D(uniform_grid((3, 2, 2)), order=3)
        op = sem.operator("matfree", threads=2)
        u = np.random.default_rng(6).standard_normal(sem.n_dof)
        z = op @ u
        for _ in range(3):
            assert np.array_equal(op @ u, z)

    def test_tiny_workload_runs_serial(self):
        # fewer padded blocks than threads -> the plan drops to serial
        sem = Sem2D(uniform_grid((2, 2)), order=2)  # 4 elements -> 1 block
        op = sem.operator("matfree", threads=4)
        assert op.tier == "fused"


class TestSimulationParity:
    """End-to-end: a threads=2 config reproduces the serial trace."""

    def _cfg(self, **backend):
        from repro.api import SimulationConfig

        return SimulationConfig.from_dict(
            {
                "mesh": {"family": "uniform_grid", "params": {"shape": [6, 5]}},
                "material": {"model": "acoustic", "c": 1.0, "rho": 1.0},
                "order": 3,
                "time": {"t_end": 0.05},
                "backend": backend,
            }
        )

    def test_numpy_pool_matches_serial(self):
        from repro.api import Simulation

        ref = Simulation(self._cfg(stiffness="matfree", fused=False)).run()
        sim = Simulation(self._cfg(stiffness="matfree", fused=False, threads=2))
        assert sim.kernel_tier() == "numpy-threads:2"
        res = sim.run()
        assert res.metadata["kernel_tier"] == "numpy-threads:2"
        assert _rel_err(res.u, ref.u) < TOL

    @pytest.mark.skipif(not OMP, reason="fused kernels without OpenMP")
    def test_openmp_fused_matches_serial(self):
        from repro.api import Simulation

        ref = Simulation(self._cfg(stiffness="matfree")).run()
        sim = Simulation(self._cfg(stiffness="matfree", threads=2))
        res = sim.run()
        assert res.metadata["kernel_tier"] == "fused+openmp:2"
        assert _rel_err(res.u, ref.u) < TOL


class TestTierReporting:
    def test_describe_matches_built_operator(self):
        sem = Sem2D(uniform_grid((5, 4)), order=3)
        for uf, th in [(False, None), (False, 2), (None, None)]:
            op = sem.operator("matfree", use_fused=uf, threads=th)
            assert op.tier == describe_tier("acoustic", 2, 3, uf, th)

    def test_describe_unfused_physics(self):
        # 1D has no fused tier regardless of availability.
        assert describe_tier("acoustic", 1, 3) == "numpy"
        assert describe_tier("acoustic", 1, 3, threads=2) == "numpy-threads:2"

    def test_env_override_reaches_operator(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "2")
        sem = Sem2D(uniform_grid((5, 4)), order=3)
        op = sem.operator("matfree", use_fused=False)
        assert op.tier == "numpy-threads:2"
