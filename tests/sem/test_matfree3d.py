"""3D matrix-free backend: machine-precision equivalence with assembled
CSR (full apply and LTS level-restricted apply), mirroring the 2D suite,
plus the fused-tier gating rules specific to 3D."""

import numpy as np
import pytest

from repro.mesh import uniform_grid
from repro.sem import Sem3D, fused
from repro.sem.matfree import AcousticKernel3D, local_stiffness
from repro.util.errors import SolverError

#: Both implementation tiers when the fused C kernels are available,
#: otherwise just the portable NumPy path.
FUSED_PARAMS = [False, None] if fused.available() else [False]


def _mesh(shape=(3, 3, 2)):
    mesh = uniform_grid(shape, (1.0, 1.3, 0.8))
    mesh.c = mesh.c.copy()
    mesh.c[mesh.n_elements // 2] = 3.0  # velocity contrast
    return mesh


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


class TestAcoustic3DEquivalence:
    @pytest.mark.parametrize("order", range(1, 7))
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_full_apply(self, order, dirichlet):
        sem = Sem3D(_mesh(), order=order, dirichlet=dirichlet)
        u = np.random.default_rng(order).standard_normal(sem.n_dof)
        ref = sem.A @ u
        for uf in FUSED_PARAMS:
            op = sem.operator("matfree", use_fused=uf)
            assert _rel_err(op @ u, ref) < 1e-12, (order, dirichlet, uf)

    @pytest.mark.parametrize("order", [1, 3, 5])
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_restricted_apply(self, order, dirichlet):
        sem = Sem3D(_mesh(), order=order, dirichlet=dirichlet)
        rng = np.random.default_rng(order)
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=max(1, sem.n_dof // 3), replace=False)
        ref = sem.operator("assembled").restrict(cols).apply(u)
        for uf in FUSED_PARAMS:
            restr = sem.operator("matfree", use_fused=uf).restrict(cols)
            assert _rel_err(restr.apply(u), ref) < 1e-12, (order, dirichlet, uf)
            assert restr.ops > 0

    def test_reach_superset_of_assembled(self):
        sem = Sem3D(_mesh(), order=3)
        mask = np.zeros(sem.n_dof, dtype=bool)
        mask[::11] = True
        reach_a = sem.operator("assembled").reach(mask)
        reach_m = sem.operator("matfree").reach(mask)
        assert np.all(reach_m | ~reach_a)  # reach_a implies reach_m

    def test_nnz_counts_contraction_flops(self):
        """3D flops per element are O(n^4): the sum-factorization payoff
        against the O(n^6) dense element matvec."""
        sem = Sem3D(_mesh(), order=4)
        op = sem.operator("matfree")
        k = op.kernel
        assert isinstance(k, AcousticKernel3D)
        n1 = k.n1
        assert k.flops_per_element == 6 * n1**4 + 9 * n1**3
        assert op.nnz == sem.mesh.n_elements * k.flops_per_element

    def test_local_stiffness_matches_partial_assembly(self):
        sem = Sem3D(_mesh(), order=2)
        ids = np.array([0, 3, 7, 11])
        gd = np.unique(sem.element_dofs[ids].ravel())
        ld = np.searchsorted(gd, sem.element_dofs[ids])
        for uf in FUSED_PARAMS:
            K = local_stiffness(sem, ids, ld, len(gd), use_fused=uf)
            u = np.random.default_rng(0).standard_normal(len(gd))
            ref = np.zeros(len(gd))
            Ke, _ = sem.element_system_batch(ids)
            for m in range(len(ids)):
                ref[ld[m]] += Ke[m] @ u[ld[m]]
            assert _rel_err(K @ u, ref) < 1e-12


class TestFusedGating3D:
    def test_numpy_path_pinned(self):
        sem = Sem3D(_mesh(), order=2)
        op = sem.operator("matfree", use_fused=False)
        assert op._stiffness._plan is None
        assert np.isfinite(op @ np.ones(sem.n_dof)).all()

    @pytest.mark.skipif(not fused.available(), reason="no C compiler")
    def test_fused_3d_plan_built_when_available(self):
        sem = Sem3D(_mesh(), order=2)
        plan = sem.operator("matfree")._stiffness._plan
        assert isinstance(plan, fused.Acoustic3DPlan)

    def test_order_above_3d_cap_falls_back_to_numpy(self):
        """Beyond MAX_ORDER_3D the auto tier must fall back silently,
        and forcing the fused tier must raise (REPRO_FUSED contract)."""
        order = fused.MAX_ORDER_3D + 1
        sem = Sem3D(uniform_grid((1, 1, 1)), order=order)
        op = sem.operator("matfree")  # auto: numpy fallback
        assert op._stiffness._plan is None
        u = np.random.default_rng(0).standard_normal(sem.n_dof)
        assert _rel_err(op @ u, sem.A @ u) < 1e-12
        with pytest.raises(SolverError):
            sem.operator("matfree", use_fused=True)
