"""3D hexahedral SEM: entity numbering, conformity, and spectral accuracy.

The delicate part of the 3D continuous SEM is the *shared-face interior
numbering*: two elements seeing the same face must map its (order-1)^2
interior nodes identically for any conforming orientation.  These tests
pin that (structured node counts, per-element coordinate consistency,
invariance under random node relabelling) plus the physics (eigenmode
residuals decaying spectrally with order, standing-wave accuracy in
time) mirroring the 2D tier-1 suite.
"""

import numpy as np
import pytest

from repro.core.newmark import NewmarkSolver, staggered_initial_velocity
from repro.mesh import uniform_grid
from repro.mesh.mesh import Mesh
from repro.sem import Sem3D, discrete_energy
from repro.util.errors import SolverError


def _contrast_mesh(shape=(3, 3, 2)):
    mesh = uniform_grid(shape, (1.0, 1.3, 0.8))
    mesh.c = mesh.c.copy()
    mesh.c[mesh.n_elements // 2] = 3.0
    return mesh


def _relabel_nodes(mesh: Mesh, seed: int) -> Mesh:
    """The same mesh with a random permutation of the node numbering.

    Conformity is unchanged, but corner-id-derived entity frames (edge
    traversal direction, face canonical frames) all change — exercising
    the orientation machinery far beyond what a structured grid does.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(mesh.n_nodes)  # new id of old node i
    coords = np.empty_like(mesh.coords)
    coords[perm] = mesh.coords
    return Mesh(
        dim=3,
        coords=coords,
        elements=perm[mesh.elements],
        h=mesh.h.copy(),
        c=mesh.c.copy(),
        name=mesh.name,
    )


class TestNumbering:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    @pytest.mark.parametrize("shape", [(2, 2, 2), (3, 2, 4)])
    def test_structured_dof_count(self, order, shape):
        """On an n-cell structured grid the continuous space has exactly
        prod(n_a * order + 1) nodes — any duplicate or missed sharing
        would change the count."""
        sem = Sem3D(uniform_grid(shape), order=order)
        assert sem.n_dof == np.prod([n * order + 1 for n in shape])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dof_count_invariant_under_node_relabelling(self, seed):
        base = uniform_grid((3, 2, 2))
        sem = Sem3D(base, order=4)
        sem_p = Sem3D(_relabel_nodes(base, seed), order=4)
        assert sem_p.n_dof == sem.n_dof

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shared_nodes_coincide_geometrically(self, seed):
        """Every element's view of its GLL nodes must agree with the
        global coordinate table — shared edge/face nodes included, under
        arbitrary node relabelling (all canonical face frames)."""
        mesh = _relabel_nodes(uniform_grid((3, 2, 2), (1.0, 0.7, 1.9)), seed)
        sem = Sem3D(mesh, order=4)
        from repro.sem.gll import gll_points_weights

        xi, _ = gll_points_weights(4)
        gx = (xi + 1.0) / 2.0
        n1 = 5
        flat = np.arange(n1**3)
        p0 = mesh.coords[mesh.elements[:, 0]]
        for a in range(3):
            ia = (flat // n1 ** (2 - a)) % n1
            expect = (p0[:, a : a + 1] + gx[None, :] * sem.h_axes[:, a : a + 1])[:, ia]
            got = sem.node_coords[sem.element_dofs, a]
            assert np.abs(got - expect).max() < 1e-12

    def test_boundary_dofs_are_the_geometric_boundary(self):
        sem = Sem3D(uniform_grid((2, 3, 2), (1.0, 1.0, 1.0)), order=3)
        xc = sem.node_coords
        on_bnd = (
            np.isclose(xc, 0.0) | np.isclose(xc, 1.0)
        ).any(axis=1)
        assert np.array_equal(np.sort(sem.boundary_dofs()), np.nonzero(on_bnd)[0])

    def test_rejects_2d_mesh_and_bad_geometry(self):
        with pytest.raises(SolverError):
            Sem3D(uniform_grid((2, 2)), order=2)
        mesh = uniform_grid((2, 2, 2))
        mesh.coords = mesh.coords.copy()
        mesh.coords[0] += 0.1  # break the axis-aligned box assumption
        with pytest.raises(SolverError):
            Sem3D(mesh, order=2)


class TestOperator:
    def test_mass_sums_to_volume(self):
        sem = Sem3D(uniform_grid((3, 2, 2), (1.0, 0.7, 1.9)), order=3)
        assert sem.M.sum() == pytest.approx(1.0 * 0.7 * 1.9, rel=1e-12)

    def test_stiffness_symmetric_with_constant_nullspace(self):
        sem = Sem3D(_contrast_mesh(), order=3)
        assert abs(sem.K - sem.K.T).max() < 1e-10
        assert np.abs(sem.K @ np.ones(sem.n_dof)).max() < 1e-10

    def test_element_system_matches_assembled(self):
        """Summing dense element systems reproduces the global K and M."""
        sem = Sem3D(_contrast_mesh((2, 2, 2)), order=2)
        Ke, Me = sem.element_system_batch()
        K = np.zeros((sem.n_dof, sem.n_dof))
        M = np.zeros(sem.n_dof)
        for e in range(sem.mesh.n_elements):
            d = sem.element_dofs[e]
            K[np.ix_(d, d)] += Ke[e]
            M[d] += Me[e]
        assert np.abs(K - sem.K.toarray()).max() < 1e-12
        assert np.abs(M - sem.M).max() < 1e-12

    def test_dirichlet_masks_boundary_rows_and_cols(self):
        sem = Sem3D(uniform_grid((2, 2, 2)), order=2, dirichlet=True)
        bnd = sem.boundary_dofs()
        A = sem.A.toarray()
        assert np.abs(A[bnd, :]).max() == 0.0
        assert np.abs(A[:, bnd]).max() == 0.0


class TestSpectralAccuracy3D:
    """u = cos(pi x) cos(pi y) cos(pi z) is a Neumann eigenmode of
    ``-div(c^2 grad .)`` with eigenvalue 3 pi^2 for c = 1."""

    def _mode(self, sem):
        return sem.interpolate(
            lambda x, y, z: np.cos(np.pi * x) * np.cos(np.pi * y) * np.cos(np.pi * z)
        )

    def test_plane_wave_eigen_residual_converges_spectrally(self):
        """Order sweep at fixed mesh: the operator residual on the
        eigenmode must fall by orders of magnitude per order increment
        (spectral convergence — the 3D analogue of the 2D suite)."""
        errs = {}
        for order in (2, 3, 4, 5, 6):
            sem = Sem3D(uniform_grid((2, 2, 2), (1.0, 1.0, 1.0)), order=order)
            u = self._mode(sem)
            errs[order] = np.abs(sem.A @ u - 3 * np.pi**2 * u).max()
        # monotone decay, and at least ~4 orders of magnitude over the sweep
        assert all(errs[o + 1] < errs[o] for o in (2, 3, 4, 5)), errs
        assert errs[6] < 1e-4 * errs[2], errs

    def test_standing_wave_time_accuracy(self):
        sem = Sem3D(uniform_grid((2, 2, 2), (1.0, 1.0, 1.0)), order=5)
        om = np.sqrt(3.0) * np.pi
        u0 = self._mode(sem)
        T, n = 0.5, 800
        dt = T / n
        v0 = staggered_initial_velocity(sem.A, dt, u0, np.zeros_like(u0))
        u, _ = NewmarkSolver(sem.A, dt).run(u0, v0, n)
        assert np.max(np.abs(u - u0 * np.cos(om * T))) < 5e-4

    def test_energy_conserved(self):
        sem = Sem3D(_contrast_mesh((2, 2, 2)), order=3)
        u = self._mode(sem)
        dt = 5e-3
        v = staggered_initial_velocity(sem.A, dt, u, np.zeros_like(u))
        solver = NewmarkSolver(sem.A, dt)
        energies = []
        for _ in range(100):
            u_prev = u.copy()
            u, v = solver.step(u, v)
            energies.append(discrete_energy(sem.M, sem.K, u_prev, u, v))
        energies = np.asarray(energies)
        assert np.ptp(energies) / energies.mean() < 1e-6
