"""2D wave-propagation accuracy tests on the assembled SEM system."""

import numpy as np
import pytest

from repro.core.newmark import NewmarkSolver, staggered_initial_velocity
from repro.mesh import uniform_grid
from repro.sem import Sem2D, discrete_energy


@pytest.fixture(scope="module")
def square():
    mesh = uniform_grid((6, 6), (1.0, 1.0))
    return Sem2D(mesh, order=4)


class TestStandingWave2D:
    """u = cos(pi x) cos(pi y) cos(omega t) is a Neumann eigenmode with
    omega = sqrt(2) pi for c = 1."""

    def test_accuracy(self, square):
        sem = square
        om = np.sqrt(2.0) * np.pi
        u0 = sem.interpolate(lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y))
        T = 0.8
        n = 600
        dt = T / n
        v0 = staggered_initial_velocity(sem.A, dt, u0, np.zeros_like(u0))
        u, _ = NewmarkSolver(sem.A, dt).run(u0, v0, n)
        exact = u0 * np.cos(om * T)
        assert np.max(np.abs(u - exact)) < 5e-4

    def test_temporal_convergence_second_order(self, square):
        sem = square
        om = np.sqrt(2.0) * np.pi
        u0 = sem.interpolate(lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y))
        T = 0.4
        errs = []
        for n in (150, 300, 600):
            dt = T / n
            v0 = staggered_initial_velocity(sem.A, dt, u0, np.zeros_like(u0))
            u, _ = NewmarkSolver(sem.A, dt).run(u0, v0, n)
            errs.append(np.max(np.abs(u - u0 * np.cos(om * T))))
        orders = [np.log2(errs[i] / errs[i + 1]) for i in range(2)]
        assert all(o > 1.8 for o in orders), (errs, orders)

    def test_spectral_spatial_accuracy(self):
        """At fixed tiny dt, raising the order slashes the spatial error."""
        om = np.sqrt(2.0) * np.pi
        errs = {}
        for order in (2, 4):
            sem = Sem2D(uniform_grid((4, 4), (1.0, 1.0)), order=order)
            u0 = sem.interpolate(lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y))
            T, n = 0.2, 800
            dt = T / n
            v0 = staggered_initial_velocity(sem.A, dt, u0, np.zeros_like(u0))
            u, _ = NewmarkSolver(sem.A, dt).run(u0, v0, n)
            errs[order] = np.max(np.abs(u - u0 * np.cos(om * T)))
        assert errs[4] < errs[2] / 10

    def test_energy_conserved(self, square):
        sem = square
        u = sem.interpolate(lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y))
        dt = 5e-4
        v = staggered_initial_velocity(sem.A, dt, u, np.zeros_like(u))
        solver = NewmarkSolver(sem.A, dt)
        energies = []
        for _ in range(200):
            u_prev = u.copy()
            u, v = solver.step(u, v)
            energies.append(discrete_energy(sem.M, sem.K, u_prev, u, v))
        energies = np.asarray(energies)
        assert np.ptp(energies) / energies.mean() < 1e-6


class TestHeterogeneous2D:
    def test_fast_inclusion_shrinks_stable_step(self):
        from repro.core import stable_timestep_from_operator

        uniform = Sem2D(uniform_grid((4, 4)), order=3)
        contrast_mesh = uniform_grid((4, 4))
        contrast_mesh.c = contrast_mesh.c.copy()
        contrast_mesh.c[5] = 4.0
        contrast = Sem2D(contrast_mesh, order=3)
        dt_u = stable_timestep_from_operator(uniform.A)
        dt_c = stable_timestep_from_operator(contrast.A)
        assert dt_c < dt_u / 2  # 4x velocity ~ 4x smaller step
