"""Tests for source-time functions and point sources."""

import numpy as np
import pytest

from repro.sem import point_source, ricker
from repro.mesh import uniform_interval
from repro.sem import Sem1D
from repro.util.errors import SolverError


class TestRicker:
    def test_peak_at_t0(self):
        s = ricker(f0=2.0, t0=1.0, amplitude=3.0)
        assert s(1.0) == pytest.approx(3.0)

    def test_default_delay_suppresses_startup(self):
        s = ricker(f0=5.0)
        assert abs(s(0.0)) < 1e-2

    def test_zero_mean(self):
        s = ricker(f0=3.0, t0=1.0)
        t = np.linspace(0, 2, 4001)
        vals = np.array([s(x) for x in t])
        assert abs(np.trapezoid(vals, t)) < 1e-6

    def test_rejects_bad_frequency(self):
        with pytest.raises(SolverError):
            ricker(0.0)


class TestPointSource:
    def test_mass_scaling(self):
        sem = Sem1D(uniform_interval(4), order=3)
        d = 5
        f = point_source(sem.n_dof, d, sem.M, lambda t: 2.0)
        out = f(0.0)
        assert out[d] == pytest.approx(2.0 / sem.M[d])
        assert np.count_nonzero(out) == 1

    def test_rejects_bad_dof(self):
        with pytest.raises(SolverError):
            point_source(4, 9, np.ones(4), lambda t: 1.0)

    def test_time_dependence(self):
        f = point_source(3, 1, np.ones(3), lambda t: t)
        assert f(2.0)[1] == pytest.approx(2.0)
        assert f(0.0)[1] == pytest.approx(0.0)
