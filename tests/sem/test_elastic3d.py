"""Tests for the 3D isotropic elastic SEM on the physics-generic core:
assembly invariants, backend equivalence (full + LTS-restricted), fused
gating, kernel-spec dispatch, energy conservation, power-iteration CFL,
and distributed LTS — the 3D instances of the paper's Eqs. (1)-(2)."""

import numpy as np
import pytest

from repro.core import (
    KernelSpec,
    assign_levels,
    stable_timestep_from_operator,
)
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.core.newmark import NewmarkSolver, staggered_initial_velocity
from repro.mesh import uniform_grid
from repro.sem import ElasticSem3D, discrete_energy, fused
from repro.sem.matfree import (
    ElasticKernel3D,
    ElasticKernelND,
    kernel_from_spec,
    local_stiffness,
)
from repro.util.errors import SolverError

#: Both implementation tiers when the fused C kernels are available,
#: otherwise just the portable NumPy path.
FUSED_PARAMS = [False, None] if fused.available() else [False]


def _mesh(shape=(3, 2, 2)):
    return uniform_grid(shape, (1.0, 1.3, 0.8))


def _sem(order=3, shape=(3, 2, 2), **kw):
    kw.setdefault("lam", 2.3)
    kw.setdefault("mu", 1.7)
    kw.setdefault("rho", 1.1)
    return ElasticSem3D(_mesh(shape), order=order, **kw)


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


@pytest.fixture(scope="module")
def elastic():
    return ElasticSem3D(
        uniform_grid((2, 2, 2), (1.0, 1.0, 1.0)), order=3, lam=2.0, mu=1.0, rho=1.0
    )


class TestAssembly:
    def test_dof_count(self, elastic):
        assert elastic.n_dof == 3 * (2 * 3 + 1) ** 3
        assert elastic.n_dof == 3 * elastic.n_scalar

    def test_stiffness_symmetric_psd(self, elastic):
        K = elastic.K.toarray()
        assert np.allclose(K, K.T, atol=1e-10)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-8

    def test_rigid_body_translations_in_kernel(self, elastic):
        for comp in range(3):
            u = np.zeros(elastic.n_dof)
            u[comp::3] = 1.0
            assert np.max(np.abs(elastic.K @ u)) < 1e-9

    def test_infinitesimal_rotations_in_kernel(self, elastic):
        """All three infinitesimal rotations have zero strain: the
        elastic energy kernel is exactly the rigid motions."""
        zero = lambda x, y, z: 0 * x  # noqa: E731
        rotations = [
            elastic.interpolate(lambda x, y, z: y, lambda x, y, z: -x, zero),
            elastic.interpolate(lambda x, y, z: z, zero, lambda x, y, z: -x),
            elastic.interpolate(zero, lambda x, y, z: z, lambda x, y, z: -y),
        ]
        for u in rotations:
            assert np.max(np.abs(elastic.K @ u)) < 1e-8

    def test_mass_positive_and_totals_rho_volume(self, elastic):
        assert np.all(elastic.M > 0)
        assert elastic.M.sum() == pytest.approx(3.0 * 1.0)  # 3 comps x rho x vol

    def test_p_and_s_velocities(self, elastic):
        assert np.allclose(elastic.p_velocity(), 2.0)  # sqrt((2+2)/1)
        assert np.allclose(elastic.s_velocity(), 1.0)

    def test_spectrum_scales_with_moduli(self, elastic):
        """A is linear in (lambda, mu)/rho: scaling both by 4 scales
        every entry of A by 4 (homogeneity check of the assembly)."""
        sem4 = ElasticSem3D(
            uniform_grid((2, 2, 2), (1.0, 1.0, 1.0)), order=3, lam=8.0, mu=4.0, rho=1.0
        )
        diff = sem4.A - 4.0 * elastic.A
        assert np.max(np.abs(diff.toarray())) < 1e-9

    def test_dirichlet_masks_all_components(self):
        sem = _sem(order=2, dirichlet=True)
        bd = sem.boundary_dofs()
        assert len(bd) % 3 == 0
        u = np.random.default_rng(0).standard_normal(sem.n_dof)
        z = sem.A @ u
        assert np.max(np.abs(z[bd])) == 0.0

    def test_rejects_bad_materials_and_dim(self):
        with pytest.raises(SolverError):
            ElasticSem3D(_mesh(), mu=-1.0)
        with pytest.raises(SolverError):
            ElasticSem3D(uniform_grid((2, 2)), order=2)


class TestBackendEquivalence:
    @pytest.mark.parametrize("order", range(1, 5))
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_full_apply(self, order, dirichlet):
        sem = _sem(order=order, dirichlet=dirichlet)
        u = np.random.default_rng(order).standard_normal(sem.n_dof)
        ref = sem.A @ u
        for uf in FUSED_PARAMS:
            op = sem.operator("matfree", use_fused=uf)
            assert _rel_err(op @ u, ref) < 1e-12, (order, dirichlet, uf)

    @pytest.mark.parametrize("order", [1, 2, 3])
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_restricted_apply(self, order, dirichlet):
        sem = _sem(order=order, dirichlet=dirichlet)
        rng = np.random.default_rng(order)
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=max(1, sem.n_dof // 3), replace=False)
        ref = sem.operator("assembled").restrict(cols).apply(u)
        for uf in FUSED_PARAMS:
            restr = sem.operator("matfree", use_fused=uf).restrict(cols)
            assert _rel_err(restr.apply(u), ref) < 1e-12, (order, dirichlet, uf)
            assert restr.ops > 0

    def test_heterogeneous_materials(self):
        rng = np.random.default_rng(3)
        mesh = _mesh()
        lam = rng.uniform(1.0, 4.0, mesh.n_elements)
        mu = rng.uniform(0.5, 2.0, mesh.n_elements)
        rho = rng.uniform(0.8, 1.2, mesh.n_elements)
        sem = ElasticSem3D(mesh, order=3, lam=lam, mu=mu, rho=rho)
        u = rng.standard_normal(sem.n_dof)
        ref = sem.A @ u
        for uf in FUSED_PARAMS:
            assert _rel_err(sem.operator("matfree", use_fused=uf) @ u, ref) < 1e-12

    def test_reach_superset_of_assembled(self):
        sem = _sem(order=2)
        mask = np.zeros(sem.n_dof, dtype=bool)
        mask[::11] = True
        reach_a = sem.operator("assembled").reach(mask)
        reach_m = sem.operator("matfree").reach(mask)
        assert np.all(reach_m | ~reach_a)  # reach_a implies reach_m

    def test_local_stiffness_matches_partial_assembly(self):
        sem = _sem(order=2)
        ids = np.array([0, 3, 7, 11])
        gd = np.unique(sem.element_dofs[ids].ravel())
        ld = np.searchsorted(gd, sem.element_dofs[ids])
        for uf in FUSED_PARAMS:
            K = local_stiffness(sem, ids, ld, len(gd), use_fused=uf)
            u = np.random.default_rng(0).standard_normal(len(gd))
            ref = np.zeros(len(gd))
            Ke, _ = sem.element_system_batch(ids)
            for m in range(len(ids)):
                ref[ld[m]] += Ke[m] @ u[ld[m]]
            assert _rel_err(K @ u, ref) < 1e-12

    def test_nnz_counts_contraction_flops(self):
        sem = _sem(order=3)
        op = sem.operator("matfree")
        assert isinstance(op.kernel, ElasticKernel3D)
        assert op.nnz == sem.mesh.n_elements * op.kernel.flops_per_element
        cols = np.arange(10)
        assert 0 < op.restrict(cols).ops < op.nnz


class TestKernelSpec:
    def test_elastic_spec_fields(self):
        sem = _sem(order=2)
        spec = sem.kernel_spec()
        assert (spec.physics, spec.dim, spec.n_comp) == ("elastic", 3, 3)
        assert spec.params["h_axes"].shape == (sem.mesh.n_elements, 3)

    def test_spec_subset_slices_params(self):
        spec = _sem(order=2).kernel_spec().subset(np.array([1, 4]))
        assert spec.params["lam"].shape == (2,)
        assert spec.params["h_axes"].shape == (2, 3)

    def test_kernel_from_spec_dispatch(self):
        sem = _sem(order=2)
        k = kernel_from_spec(sem.kernel_spec())
        assert isinstance(k, ElasticKernel3D)
        assert isinstance(k, ElasticKernelND)
        assert k.n_comp == 3

    def test_unknown_physics_rejected(self):
        spec = KernelSpec(physics="magnetic", order=2, dim=3, n_comp=1, params={})
        with pytest.raises(SolverError):
            kernel_from_spec(spec)

    def test_assembler_without_spec_rejected(self):
        """The explicit protocol replaced duck-typed attribute sniffing:
        an assembler that declares nothing gets a clear error."""

        class Legacy:
            order = 2

        from repro.sem.matfree import _make_kernel

        with pytest.raises(SolverError):
            _make_kernel(Legacy())


class TestFusedGating3D:
    def test_numpy_path_pinned(self):
        sem = _sem(order=2)
        op = sem.operator("matfree", use_fused=False)
        assert op._stiffness._plan is None
        assert np.isfinite(op @ np.ones(sem.n_dof)).all()

    @pytest.mark.skipif(not fused.available(), reason="no C compiler")
    def test_fused_3d_plan_built_when_available(self):
        sem = _sem(order=2)
        plan = sem.operator("matfree")._stiffness._plan
        assert isinstance(plan, fused.Elastic3DPlan)

    def test_order_above_3d_cap_falls_back_to_numpy(self):
        order = fused.MAX_ORDER_3D + 1
        sem = ElasticSem3D(uniform_grid((1, 1, 1)), order=order, lam=2.0, mu=1.0)
        op = sem.operator("matfree")  # auto: numpy fallback
        assert op._stiffness._plan is None
        u = np.random.default_rng(0).standard_normal(sem.n_dof)
        assert _rel_err(op @ u, sem.A @ u) < 1e-12
        with pytest.raises(SolverError):
            sem.operator("matfree", use_fused=True)


class TestDynamicsAndCFL:
    def test_energy_conserved(self, elastic):
        """Staggered Newmark on the free-surface elastic operator
        conserves the discrete energy (as the 2D suite pins)."""
        zero = lambda x, y, z: 0 * x  # noqa: E731
        u = elastic.interpolate(
            lambda x, y, z: np.cos(np.pi * x) * np.cos(np.pi * y) * np.cos(np.pi * z),
            zero,
            zero,
        )
        dt = 2e-4
        v = staggered_initial_velocity(elastic.A, dt, u, np.zeros_like(u))
        solver = NewmarkSolver(elastic.A, dt)
        energies = []
        for _ in range(150):
            u_prev = u.copy()
            u, v = solver.step(u, v)
            energies.append(discrete_energy(elastic.M, elastic.K, u_prev, u, v))
        energies = np.asarray(energies)
        assert np.ptp(energies) / energies.mean() < 1e-6

    @pytest.mark.parametrize("use_fused", FUSED_PARAMS)
    def test_power_iteration_cfl_matches_eigs(self, use_fused):
        """Matrix-free CFL on the elastic operator action agrees with
        the sparse eigensolver bound (no assembled matrix needed)."""
        sem = _sem(order=2)
        dt_eigs = stable_timestep_from_operator(sem.A, method="eigs")
        dt_power = stable_timestep_from_operator(
            sem.operator("matfree", use_fused=use_fused), method="power"
        )
        assert abs(dt_eigs - dt_power) / dt_eigs < 1e-6

    def test_auto_selects_power_for_matrix_free_elastic(self):
        sem = _sem(order=2)
        dt = stable_timestep_from_operator(sem.operator("matfree"), method="auto")
        assert dt > 0


class TestElasticLTS3D:
    def _setup(self):
        mesh = _mesh((3, 3, 2))
        lam = np.full(mesh.n_elements, 2.0)
        mu = np.full(mesh.n_elements, 1.0)
        lam[7] = 32.0
        mu[7] = 16.0  # cp factor-4 inclusion
        sem = ElasticSem3D(mesh, order=2, lam=lam, mu=mu)
        levels = assign_levels(mesh, c_cfl=0.35, order=2, velocity=sem.p_velocity())
        assert levels.n_levels >= 2  # P-velocity-driven, not geometry
        dof_level = dof_levels_from_elements(
            sem.element_dofs, levels.level, sem.n_dof
        )
        zero = lambda x, y, z: 0 * x  # noqa: E731
        u0 = sem.interpolate(
            lambda x, y, z: np.exp(-8 * ((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.4) ** 2)),
            zero,
            zero,
        )
        v0 = staggered_initial_velocity(sem.A, levels.dt, u0, np.zeros_like(u0))
        return sem, levels, dof_level, u0, v0

    def test_lts_modes_agree_on_stiff_inclusion(self):
        sem, levels, dof_level, u0, v0 = self._setup()
        u1, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="reference").run(
            u0, v0, 4
        )
        u2, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="optimized").run(
            u0, v0, 4
        )
        assert np.max(np.abs(u1 - u2)) < 1e-12
        assert np.all(np.isfinite(u1))

    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_distributed_elastic_lts_matches_serial(self, backend):
        from repro.runtime import DistributedLTSSolver, build_rank_layout

        sem, levels, dof_level, u0, v0 = self._setup()
        us, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="reference").run(
            u0, v0, 3
        )
        parts = (np.arange(sem.mesh.n_elements) % 3).astype(np.int64)
        layout = build_rank_layout(
            sem, parts, 3, dof_level=dof_level, backend=backend
        )
        ud, _ = DistributedLTSSolver(layout, levels.dt).run(u0, v0, 3)
        assert np.max(np.abs(us - ud)) < 1e-11
