"""Variable-density acoustics: ``rho u_tt = div(rho c^2 grad u)``.

The acoustic assemblers historically hardwired ``rho = 1``; the material
layer exposes it.  With the modulus ``kappa = rho c^2`` the wave speed
stays ``c``, constant density cancels out of ``A = M^{-1} K`` entirely,
and density *contrast* changes the operator — verified here against a
closed-form two-layer eigenmode with spectral convergence."""

import numpy as np
import pytest

from repro.mesh import uniform_grid
from repro.sem import IsotropicAcoustic, Sem2D, Sem3D
from repro.util.errors import SolverError


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


class TestDensityScaling:
    def test_default_matches_explicit_unit_density(self):
        mesh = uniform_grid((4, 3))
        a = Sem2D(mesh, order=3)
        b = Sem2D(mesh, order=3, rho=1.0)
        assert np.array_equal(a.M, b.M)
        assert (a.K != b.K).nnz == 0
        assert (a.A != b.A).nnz == 0

    def test_constant_density_cancels_in_operator(self):
        """kappa = rho c^2 scales K by rho and M by rho, so a constant
        density leaves A = M^{-1} K (and every wave solution) unchanged."""
        mesh = uniform_grid((4, 3))
        a = Sem2D(mesh, order=3)
        b = Sem2D(mesh, order=3, rho=2.5)
        assert np.allclose(b.M, 2.5 * a.M)
        u = np.random.default_rng(0).standard_normal(a.n_dof)
        assert _rel_err(b.A @ u, a.A @ u) < 1e-13

    @pytest.mark.parametrize(
        "grid,cls", [((4, 3), Sem2D), ((2, 2, 2), Sem3D)]
    )
    def test_heterogeneous_density_backend_equivalence(self, grid, cls):
        mesh = uniform_grid(grid)
        rng = np.random.default_rng(0)
        sem = cls(mesh, order=3, rho=1.0 + rng.random(mesh.n_elements))
        u = rng.standard_normal(sem.n_dof)
        assert _rel_err(sem.operator("matfree") @ u, sem.A @ u) < 1e-12

    def test_material_equals_rho_kwarg(self):
        mesh = uniform_grid((3, 3))
        rho = 1.0 + np.arange(mesh.n_elements, dtype=float) / 10
        a = Sem2D(mesh, order=2, rho=rho)
        b = Sem2D(mesh, order=2, material=IsotropicAcoustic(c=mesh.c, rho=rho))
        assert np.array_equal(a.M, b.M)
        assert (a.A != b.A).nnz == 0

    def test_rejects_nonpositive_density(self):
        mesh = uniform_grid((2, 2))
        with pytest.raises(SolverError):
            Sem2D(mesh, rho=0.0)
        with pytest.raises(SolverError):
            Sem2D(mesh, rho=-1.0)

    def test_max_velocity_is_material_speed(self):
        mesh = uniform_grid((3, 2))
        mesh.c = np.linspace(1.0, 2.0, mesh.n_elements)
        sem = Sem2D(mesh, order=2, rho=2.0)
        assert np.array_equal(sem.max_velocity(), mesh.c)


class TestHeterogeneousDensityConvergence:
    """Closed-form two-layer Neumann eigenmode with a 4x density jump.

    kappa = rho c^2 = 4 on both layers; c = 2 (rho = 1) for x < 1/3 and
    c = 4 (rho = 1/4) beyond.  With omega = 3 pi the piecewise mode

        u = cos(3 pi x / 2)            x <= 1/3
        u = -2 cos(3 pi (1 - x) / 4)   x >= 1/3

    is continuous with continuous flux and satisfies
    -(1/rho)(kappa u')' = omega^2 u with Neumann ends, so the free-
    surface operator must reproduce A u = omega^2 u spectrally (the
    interface is mesh-aligned at x = 1/3).
    """

    OMEGA = 3 * np.pi

    @staticmethod
    def _mode(x):
        return np.where(
            x <= 1 / 3,
            np.cos(1.5 * np.pi * x),
            -2.0 * np.cos(0.75 * np.pi * (1 - x)),
        )

    def _residual(self, order: int) -> float:
        mesh = uniform_grid((6, 2), (1.0, 1.0))
        left = mesh.coords[mesh.elements].mean(axis=1)[:, 0] < 1 / 3
        mesh.c = np.where(left, 2.0, 4.0)
        sem = Sem2D(mesh, order=order, rho=np.where(left, 1.0, 0.25))
        uI = sem.interpolate(lambda x, y: self._mode(x))
        return _rel_err(sem.A @ uI, self.OMEGA**2 * uI)

    def test_spectral_convergence_in_order(self):
        res = [self._residual(order) for order in (2, 3, 4, 5, 6)]
        assert all(a > b for a, b in zip(res, res[1:]))  # monotone decay
        assert res[0] > 1e-3  # genuinely coarse at order 2...
        assert res[-1] < 1e-7  # ...spectrally accurate by order 6

    def test_unit_density_does_not_solve_the_layered_problem(self):
        """Dropping the density contrast must change the operator: the
        same mode is *not* an eigenfunction of the rho = 1 operator."""
        mesh = uniform_grid((6, 2), (1.0, 1.0))
        left = mesh.coords[mesh.elements].mean(axis=1)[:, 0] < 1 / 3
        mesh.c = np.where(left, 2.0, 4.0)
        sem = Sem2D(mesh, order=6)  # rho = 1 everywhere
        uI = sem.interpolate(lambda x, y: self._mode(x))
        assert _rel_err(sem.A @ uI, self.OMEGA**2 * uI) > 1e-2
