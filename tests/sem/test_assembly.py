"""Tests for 1D/2D SEM assembly: mass lumping, stiffness, eigenstructure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mesh import refined_interval, uniform_grid, uniform_interval
from repro.sem import Sem1D, Sem2D
from repro.util.errors import SolverError


class TestSem1D:
    def test_dof_count(self):
        sem = Sem1D(uniform_interval(5), order=4)
        assert sem.n_dof == 21

    def test_mass_is_positive_and_sums_to_length(self):
        sem = Sem1D(uniform_interval(4, length=3.0), order=4)
        assert np.all(sem.M > 0)
        assert sem.M.sum() == pytest.approx(3.0)

    def test_stiffness_symmetric_positive_semidefinite(self):
        sem = Sem1D(uniform_interval(4), order=3)
        K = sem.K.toarray()
        assert np.allclose(K, K.T, atol=1e-12)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-10

    def test_stiffness_kills_constants(self):
        """Neumann stiffness annihilates the constant mode."""
        sem = Sem1D(uniform_interval(6), order=4)
        assert np.max(np.abs(sem.K @ np.ones(sem.n_dof))) < 1e-10

    def test_eigenvalue_of_first_mode(self):
        """Smallest nonzero eigenvalue of A ~ (pi*c/L)^2 for Neumann."""
        L, c = 2.0, 3.0
        sem = Sem1D(uniform_interval(16, length=L, c=c), order=4)
        vals = np.sort(np.real(np.linalg.eigvals(sem.A.toarray())))
        target = (np.pi * c / L) ** 2
        nonzero = vals[vals > 1e-8]
        assert nonzero[0] == pytest.approx(target, rel=1e-6)

    def test_dirichlet_zeroes_boundary_rows(self):
        sem = Sem1D(uniform_interval(4), order=3, dirichlet=True)
        A = sem.A.toarray()
        assert np.allclose(A[0], 0) and np.allclose(A[-1], 0)

    def test_refined_mesh_coordinates_monotone(self):
        sem = Sem1D(refined_interval(4, 4, refinement=4), order=4)
        assert np.all(np.diff(sem.x) > 0)

    def test_element_system_reassembles_global(self):
        mesh = refined_interval(3, 3, refinement=2)
        sem = Sem1D(mesh, order=3)
        K = np.zeros((sem.n_dof, sem.n_dof))
        M = np.zeros(sem.n_dof)
        for e in range(mesh.n_elements):
            Ke, Me = sem.element_system(e)
            d = sem.element_dofs[e]
            K[np.ix_(d, d)] += Ke
            M[d] += Me
        assert np.allclose(K, sem.K.toarray(), atol=1e-12)
        assert np.allclose(M, sem.M, atol=1e-12)

    def test_rejects_2d_mesh(self):
        with pytest.raises(SolverError):
            Sem1D(uniform_grid((2, 2)))

    def test_nearest_dof(self):
        sem = Sem1D(uniform_interval(10), order=2)
        assert sem.x[sem.nearest_dof(0.5)] == pytest.approx(0.5)


class TestSem2D:
    def test_dof_count_structured(self):
        sem = Sem2D(uniform_grid((3, 2)), order=4)
        assert sem.n_dof == (4 * 3 + 1) * (4 * 2 + 1)

    def test_mass_sums_to_area(self):
        sem = Sem2D(uniform_grid((3, 3), (2.0, 2.0)), order=3)
        assert sem.M.sum() == pytest.approx(4.0)

    def test_stiffness_symmetric(self):
        sem = Sem2D(uniform_grid((2, 3)), order=2)
        K = sem.K.toarray()
        assert np.allclose(K, K.T, atol=1e-12)

    def test_stiffness_kills_constants(self):
        sem = Sem2D(uniform_grid((3, 3)), order=3)
        assert np.max(np.abs(sem.K @ np.ones(sem.n_dof))) < 1e-9

    def test_first_neumann_eigenvalue(self):
        """lambda_1 = (pi c / L)^2 for the (1,0) mode on a square."""
        L = 1.0
        sem = Sem2D(uniform_grid((4, 4), (L, L)), order=4)
        vals = np.sort(np.real(np.linalg.eigvals(sem.A.toarray())))
        nonzero = vals[vals > 1e-7]
        assert nonzero[0] == pytest.approx(np.pi**2, rel=1e-4)

    def test_shared_edge_nodes_consistent(self):
        """Neighbouring elements must agree on shared GLL node ids/coords."""
        sem = Sem2D(uniform_grid((2, 1)), order=4)
        d0 = set(sem.element_dofs[0])
        d1 = set(sem.element_dofs[1])
        shared = d0 & d1
        assert len(shared) == 5  # a full edge of order-4 nodes
        for d in shared:
            assert sem.xy[d, 0] == pytest.approx(1.0)

    def test_global_coordinates_unique(self):
        sem = Sem2D(uniform_grid((3, 3)), order=3)
        xy = np.round(sem.xy, 12)
        assert len(np.unique(xy, axis=0)) == sem.n_dof

    def test_element_system_reassembles_global(self):
        mesh = uniform_grid((2, 2))
        mesh.c = mesh.c.copy()
        mesh.c[0] = 2.0
        sem = Sem2D(mesh, order=3)
        K = np.zeros((sem.n_dof, sem.n_dof))
        M = np.zeros(sem.n_dof)
        for e in range(mesh.n_elements):
            Ke, Me = sem.element_system(e)
            d = sem.element_dofs[e]
            K[np.ix_(d, d)] += Ke
            M[d] += Me
        assert np.allclose(K, sem.K.toarray(), atol=1e-10)
        assert np.allclose(M, sem.M, atol=1e-12)

    def test_boundary_dofs_on_boundary(self):
        sem = Sem2D(uniform_grid((3, 3), (1.0, 1.0)), order=3)
        b = sem.boundary_dofs()
        xy = sem.xy[b]
        on_edge = (
            np.isclose(xy[:, 0], 0) | np.isclose(xy[:, 0], 1)
            | np.isclose(xy[:, 1], 0) | np.isclose(xy[:, 1], 1)
        )
        assert np.all(on_edge)

    def test_rejects_1d_mesh(self):
        with pytest.raises(SolverError):
            Sem2D(uniform_interval(3))

    def test_mass_lumping_diagonal_invertible(self):
        sem = Sem2D(uniform_grid((2, 2)), order=4)
        assert np.all(sem.M > 0)
        assert sp.issparse(sem.A)
