"""Tests for general anisotropic elastic SEM: reduction to the isotropic
operator, backend equivalence (assembled vs matrix-free stress form),
Christoffel-driven LTS levels, and the distributed runtime."""

import numpy as np
import pytest

from repro.core import (
    assign_levels,
    stable_timestep_from_operator,
)
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.mesh import uniform_grid
from repro.runtime import DistributedLTSSolver, MailboxWorld, build_rank_layout
from repro.sem import (
    AnisotropicElastic,
    AnisotropicElasticSemND,
    ElasticSem2D,
    ElasticSem3D,
    hexagonal_stiffness,
    isotropic_stiffness,
)
from repro.sem import fused
from repro.sem.materials import rotation_about_y
from repro.util.errors import SolverError


def _random_pd_voigt(rng, n_elem, dim):
    nv = 3 if dim == 2 else 6
    A = rng.standard_normal((n_elem, nv, nv))
    return A @ A.transpose(0, 2, 1) + 3.0 * np.eye(nv)


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


class TestIsotropicReduction:
    """An isotropic Voigt tensor must reproduce ElasticSemND exactly."""

    @pytest.mark.parametrize(
        "dim,grid,cls",
        [(2, (4, 3), ElasticSem2D), (3, (2, 2, 2), ElasticSem3D)],
    )
    def test_matches_isotropic_assembler(self, dim, grid, cls):
        mesh = uniform_grid(grid, tuple(1.0 + 0.2 * a for a in range(dim)))
        rng = np.random.default_rng(dim)
        lam = 2.0 + rng.random(mesh.n_elements)
        mu = 1.0 + rng.random(mesh.n_elements)
        rho = 1.0 + rng.random(mesh.n_elements)
        iso = cls(mesh, order=3, lam=lam, mu=mu, rho=rho)
        aniso = AnisotropicElasticSemND(
            mesh, order=3, C=isotropic_stiffness(lam, mu, dim), rho=rho
        )
        assert np.array_equal(iso.M, aniso.M)
        assert _rel_err(aniso.K.toarray(), iso.K.toarray()) < 1e-14
        u = rng.standard_normal(iso.n_dof)
        assert _rel_err(aniso.A @ u, iso.A @ u) < 1e-14

    def test_max_velocity_matches_p_velocity(self):
        mesh = uniform_grid((3, 3))
        iso = ElasticSem2D(mesh, order=2, lam=2.0, mu=1.0, rho=1.3)
        aniso = AnisotropicElasticSemND(
            mesh, order=2, C=isotropic_stiffness(2.0, 1.0, 2), rho=1.3
        )
        assert np.allclose(aniso.max_velocity(), iso.p_velocity())


class TestBackendEquivalence:
    @pytest.mark.parametrize("order", range(1, 6))
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_full_apply_2d(self, order, dirichlet):
        mesh = uniform_grid((4, 3), (1.0, 1.3))
        rng = np.random.default_rng(order)
        sem = AnisotropicElasticSemND(
            mesh,
            order=order,
            C=_random_pd_voigt(rng, mesh.n_elements, 2),
            rho=1.0 + rng.random(mesh.n_elements),
            dirichlet=dirichlet,
        )
        u = rng.standard_normal(sem.n_dof)
        assert _rel_err(sem.operator("matfree") @ u, sem.A @ u) < 1e-12

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_full_apply_3d(self, order):
        mesh = uniform_grid((2, 2, 2), (1.0, 1.2, 0.9))
        rng = np.random.default_rng(order)
        sem = AnisotropicElasticSemND(
            mesh, order=order, C=_random_pd_voigt(rng, mesh.n_elements, 3)
        )
        u = rng.standard_normal(sem.n_dof)
        assert _rel_err(sem.operator("matfree") @ u, sem.A @ u) < 1e-12

    @pytest.mark.parametrize("dim,grid", [(2, (4, 3)), (3, (2, 2, 2))])
    def test_restricted_apply(self, dim, grid):
        mesh = uniform_grid(grid)
        rng = np.random.default_rng(dim)
        sem = AnisotropicElasticSemND(
            mesh, order=3, C=_random_pd_voigt(rng, mesh.n_elements, dim)
        )
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=sem.n_dof // 4, replace=False)
        ref = sem.operator("assembled").restrict(cols).apply(u)
        restr = sem.operator("matfree").restrict(cols)
        assert _rel_err(restr.apply(u), ref) < 1e-12
        assert restr.ops > 0

    def test_rigid_modes_in_kernel(self):
        """Translations and linearized rotations carry zero strain, so
        any (minor-symmetric) stiffness annihilates them."""
        mesh = uniform_grid((3, 3))
        rng = np.random.default_rng(0)
        sem = AnisotropicElasticSemND(
            mesh, order=3, C=_random_pd_voigt(rng, mesh.n_elements, 2)
        )
        op = sem.operator("matfree")
        scale = np.abs(sem.A).max()
        for c in range(2):
            z = np.zeros(sem.n_dof)
            z[c::2] = 1.0
            assert np.abs(op @ z).max() / scale < 1e-12
        rot = sem.interpolate(lambda x, y: y, lambda x, y: -x)
        assert np.abs(op @ rot).max() / scale < 1e-12

    def test_stiffness_symmetric(self):
        mesh = uniform_grid((3, 2))
        rng = np.random.default_rng(1)
        sem = AnisotropicElasticSemND(
            mesh, order=2, C=_random_pd_voigt(rng, mesh.n_elements, 2)
        )
        K = sem.K.toarray()
        assert np.allclose(K, K.T, atol=1e-12 * np.abs(K).max())

    @pytest.mark.skipif(not fused.available(), reason="no C compiler")
    @pytest.mark.parametrize("dim,grid", [(2, (4, 3)), (3, (2, 2, 2))])
    def test_fused_tier_matches_assembled(self, dim, grid):
        """The fused stress-form kernels (an_apply/an_apply3) reproduce
        the assembled CSR action at machine precision."""
        mesh = uniform_grid(grid)
        rng = np.random.default_rng(dim)
        sem = AnisotropicElasticSemND(
            mesh, order=3, C=_random_pd_voigt(rng, mesh.n_elements, dim),
            dirichlet=True,
        )
        op = sem.operator("matfree", use_fused=True)
        assert op.tier == "fused"
        u = rng.standard_normal(sem.n_dof)
        assert _rel_err(op @ u, sem.A @ u) < 1e-12
        cols = rng.choice(sem.n_dof, size=sem.n_dof // 4, replace=False)
        ref = sem.operator("assembled").restrict(cols).apply(u)
        assert _rel_err(op.restrict(cols).apply(u), ref) < 1e-12

    def test_use_fused_true_raises_when_unavailable(self):
        """Requesting the fused tier past its order ceiling must fail
        loudly, not silently fall back (3D workspace caps at
        MAX_ORDER_3D)."""
        mesh = uniform_grid((1, 1, 1))
        rng = np.random.default_rng(0)
        sem = AnisotropicElasticSemND(
            mesh, order=fused.MAX_ORDER_3D + 1,
            C=_random_pd_voigt(rng, mesh.n_elements, 3),
        )
        with pytest.raises(SolverError):
            sem.operator("matfree", use_fused=True)


class TestKernelSpec:
    def test_spec_declares_physics_and_params(self):
        mesh = uniform_grid((3, 2))
        sem = AnisotropicElasticSemND(mesh, order=2, C=isotropic_stiffness(2.0, 1.0, 2))
        spec = sem.kernel_spec()
        assert spec.physics == "anisotropic_elastic"
        assert spec.n_comp == 2
        assert spec.params["C"].shape == (mesh.n_elements, 3, 3)
        sub = sem.kernel_spec(np.array([0, 2]))
        assert sub.params["C"].shape == (2, 3, 3)
        assert sub.params["h_axes"].shape == (2, 2)


class TestChristoffelLevels:
    def test_assembler_levels_follow_christoffel_velocity(self):
        """A fast TTI slab forces finer p-levels on a uniform grid."""
        mesh = uniform_grid((6, 2, 2))
        C = np.broadcast_to(
            isotropic_stiffness(2.0, 1.0, 3), (mesh.n_elements, 6, 6)
        ).copy()
        tti = AnisotropicElastic(
            hexagonal_stiffness(80.0, 50.0, 20.0, 16.0, 20.0)
        ).rotate(rotation_about_y(0.5))
        fast = np.arange(mesh.n_elements) < mesh.n_elements // 3
        C[fast] = tti.C
        sem = AnisotropicElasticSemND(mesh, order=2, C=C)
        levels = assign_levels(mesh, assembler=sem)
        explicit = assign_levels(mesh, order=2, velocity=sem.max_velocity())
        assert np.array_equal(levels.level, explicit.level)
        assert levels.dt == explicit.dt
        assert levels.level[fast].min() > levels.level[~fast].max()

    def test_power_iteration_cfl_matches_eigs(self):
        mesh = uniform_grid((3, 3))
        rng = np.random.default_rng(3)
        sem = AnisotropicElasticSemND(
            mesh, order=3, C=_random_pd_voigt(rng, mesh.n_elements, 2)
        )
        dt_e = stable_timestep_from_operator(sem.A, method="eigs")
        dt_p = stable_timestep_from_operator(
            sem.operator("matfree"), method="power", tol=1e-10, maxiter=200_000
        )
        assert dt_p == pytest.approx(dt_e, rel=1e-3)


class TestDistributed:
    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_distributed_lts_matches_serial_3d(self, backend):
        """Anisotropic 3D through rank layouts, halo exchange and the
        distributed LTS executor, per stiffness backend."""
        mesh = uniform_grid((4, 2, 2))
        C = np.broadcast_to(
            isotropic_stiffness(2.0, 1.0, 3), (mesh.n_elements, 6, 6)
        ).copy()
        C[: mesh.n_elements // 2] = hexagonal_stiffness(80.0, 50.0, 20.0, 16.0, 20.0)
        sem = AnisotropicElasticSemND(mesh, order=2, C=C)
        levels = assign_levels(mesh, c_cfl=0.3, assembler=sem)
        assert levels.n_levels >= 2
        dof_level = dof_levels_from_elements(sem.element_dofs, levels.level, sem.n_dof)
        rng = np.random.default_rng(0)
        u0 = rng.standard_normal(sem.n_dof) * 1e-3
        v0 = np.zeros(sem.n_dof)
        us, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt).run(u0, v0, 4)

        parts = np.arange(mesh.n_elements) % 2
        layout = build_rank_layout(sem, parts, 2, dof_level=dof_level, backend=backend)
        dist = DistributedLTSSolver(layout, levels.dt, world=MailboxWorld(2))
        ud, _ = dist.run(u0, v0, 4)
        assert _rel_err(ud, us) < 1e-12
