"""Tests for the 2D P-SV elastic SEM (the paper's Eqs. (1)-(2))."""

import numpy as np
import pytest

from repro.core import assign_levels
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.core.newmark import NewmarkSolver, staggered_initial_velocity
from repro.mesh import uniform_grid
from repro.sem import discrete_energy
from repro.sem.elastic2d import ElasticSem2D
from repro.util.errors import SolverError


@pytest.fixture(scope="module")
def elastic():
    return ElasticSem2D(uniform_grid((4, 4), (1.0, 1.0)), order=4, lam=2.0, mu=1.0, rho=1.0)


class TestAssembly:
    def test_dof_count(self, elastic):
        assert elastic.n_dof == 2 * (4 * 4 + 1) ** 2

    def test_stiffness_symmetric_psd(self, elastic):
        K = elastic.K.toarray()
        assert np.allclose(K, K.T, atol=1e-10)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-8

    def test_rigid_body_translations_in_kernel(self, elastic):
        for comp in (0, 1):
            u = np.zeros(elastic.n_dof)
            u[comp::2] = 1.0
            assert np.max(np.abs(elastic.K @ u)) < 1e-9

    def test_infinitesimal_rotation_in_kernel(self, elastic):
        """(u, v) = (y, -x) has zero strain: the elastic energy kernel."""
        u = elastic.interpolate(lambda x, y: y, lambda x, y: -x)
        assert np.max(np.abs(elastic.K @ u)) < 1e-8

    def test_mass_positive_and_totals_rho_area(self, elastic):
        assert np.all(elastic.M > 0)
        assert elastic.M.sum() == pytest.approx(2.0 * 1.0)  # 2 comps x rho x area

    def test_p_and_s_velocities(self, elastic):
        assert np.allclose(elastic.p_velocity(), 2.0)  # sqrt((2+2)/1)
        assert np.allclose(elastic.s_velocity(), 1.0)

    def test_rejects_bad_materials(self):
        with pytest.raises(SolverError):
            ElasticSem2D(uniform_grid((2, 2)), mu=-1.0)


class TestEigenstructure:
    def test_plane_p_mode_at_zero_lambda(self):
        """With lambda = 0, ux = cos(pi x) (uniform in y) is traction-free
        on all four sides and is an exact eigenmode with
        omega^2 = (pi cp)^2, cp = sqrt(2 mu / rho).  (For lambda != 0 the
        lateral boundaries carry sigma_yy, so no plane mode exists — which
        is why this test pins the lambda = 0 case.)"""
        sem = ElasticSem2D(uniform_grid((4, 4), (1.0, 1.0)), order=4, lam=0.0, mu=1.0)
        vals = np.sort(np.real(np.linalg.eigvals(sem.A.toarray())))
        vals = vals[vals > 1e-6]
        target = 2.0 * np.pi**2  # (pi cp)^2, cp = sqrt(2)
        assert np.min(np.abs(vals - target)) / target < 1e-4

    def test_spectrum_scales_with_moduli(self, elastic):
        """A is linear in (lambda, mu)/rho: scaling both by 4 scales every
        eigenvalue by 4 (homogeneity check of the assembly)."""
        sem4 = ElasticSem2D(
            uniform_grid((4, 4), (1.0, 1.0)), order=4, lam=8.0, mu=4.0, rho=1.0
        )
        diff = (sem4.A - 4.0 * elastic.A)
        assert np.max(np.abs(diff.toarray())) < 1e-9


class TestDynamics:
    def test_p_plane_wave_evolution(self):
        """ux = cos(pi x) cos(pi cp t) is exact for lambda = 0."""
        sem = ElasticSem2D(uniform_grid((4, 4), (1.0, 1.0)), order=4, lam=0.0, mu=1.0)
        cp = np.sqrt(2.0)
        u0 = sem.interpolate(lambda x, y: np.cos(np.pi * x), lambda x, y: 0 * x)
        T, n = 0.5, 800
        dt = T / n
        v0 = staggered_initial_velocity(sem.A, dt, u0, np.zeros_like(u0))
        u, _ = NewmarkSolver(sem.A, dt).run(u0, v0, n)
        exact = u0 * np.cos(np.pi * cp * T)
        assert np.max(np.abs(u - exact)) < 5e-4

    def test_energy_conserved(self, elastic):
        u = elastic.interpolate(
            lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y), lambda x, y: 0 * x
        )
        dt = 2e-4
        v = staggered_initial_velocity(elastic.A, dt, u, np.zeros_like(u))
        solver = NewmarkSolver(elastic.A, dt)
        energies = []
        for _ in range(200):
            u_prev = u.copy()
            u, v = solver.step(u, v)
            energies.append(discrete_energy(elastic.M, elastic.K, u_prev, u, v))
        energies = np.asarray(energies)
        assert np.ptp(energies) / energies.mean() < 1e-6


class TestElasticLTS:
    def test_lts_modes_agree_on_stiff_inclusion(self):
        """LTS levels from a stiff (fast) inclusion; optimized == reference."""
        mesh = uniform_grid((4, 4), (1.0, 1.0))
        lam = np.full(16, 2.0)
        mu = np.full(16, 1.0)
        lam[5] = 32.0
        mu[5] = 16.0  # cp factor-4 inclusion
        sem = ElasticSem2D(mesh, order=3, lam=lam, mu=mu)
        mesh.c = sem.p_velocity()
        levels = assign_levels(mesh, c_cfl=0.35, order=3)
        assert levels.n_levels >= 2
        dof_level = dof_levels_from_elements(sem.element_dofs, levels.level, sem.n_dof)
        u0 = sem.interpolate(
            lambda x, y: np.exp(-8 * ((x - 0.5) ** 2 + (y - 0.5) ** 2)),
            lambda x, y: 0 * x,
        )
        v0 = staggered_initial_velocity(sem.A, levels.dt, u0, np.zeros_like(u0))
        u1, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="reference").run(u0, v0, 5)
        u2, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="optimized").run(u0, v0, 5)
        assert np.max(np.abs(u1 - u2)) < 1e-12
        assert np.all(np.isfinite(u1))

    def test_distributed_elastic_lts_matches_serial(self):
        from repro.runtime import DistributedLTSSolver, build_rank_layout

        mesh = uniform_grid((4, 4), (1.0, 1.0))
        lam = np.full(16, 2.0)
        mu = np.full(16, 1.0)
        lam[10] = 32.0
        mu[10] = 16.0
        sem = ElasticSem2D(mesh, order=3, lam=lam, mu=mu)
        mesh.c = sem.p_velocity()
        levels = assign_levels(mesh, c_cfl=0.35, order=3)
        dof_level = dof_levels_from_elements(sem.element_dofs, levels.level, sem.n_dof)
        u0 = sem.interpolate(
            lambda x, y: np.exp(-8 * ((x - 0.3) ** 2 + (y - 0.6) ** 2)),
            lambda x, y: 0 * x,
        )
        v0 = staggered_initial_velocity(sem.A, levels.dt, u0, np.zeros_like(u0))
        us, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="reference").run(u0, v0, 4)
        parts = (np.arange(16) % 3).astype(np.int64)
        layout = build_rank_layout(sem, parts, 3, dof_level=dof_level)
        ud, _ = DistributedLTSSolver(layout, levels.dt).run(u0, v0, 4)
        assert np.max(np.abs(us - ud)) < 1e-11
