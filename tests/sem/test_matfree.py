"""Matrix-free tensor-product operator: equivalence with the assembled CSR
backend to machine precision (paper Sec. II-C: the unassembled
implementation computes *the same* operator)."""

import numpy as np
import pytest

from repro.mesh import uniform_grid
from repro.sem import ElasticSem2D, Sem2D, fused
from repro.sem.matfree import (
    MatrixFreeOperator,
    MatrixFreeStiffness,
    local_stiffness,
    matrix_free_operator,
)

#: Both implementation tiers when the fused C kernels are available,
#: otherwise just the portable NumPy path.
FUSED_PARAMS = [False, None] if fused.available() else [False]


def _mesh(shape=(5, 4)):
    mesh = uniform_grid(shape, (1.0, 1.3))
    mesh.c = mesh.c.copy()
    mesh.c[mesh.n_elements // 2] = 3.0  # velocity contrast
    return mesh


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


class TestAcousticEquivalence:
    @pytest.mark.parametrize("order", range(1, 9))
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_full_apply(self, order, dirichlet):
        sem = Sem2D(_mesh(), order=order, dirichlet=dirichlet)
        u = np.random.default_rng(order).standard_normal(sem.n_dof)
        ref = sem.A @ u
        for uf in FUSED_PARAMS:
            op = sem.operator("matfree", use_fused=uf)
            assert _rel_err(op @ u, ref) < 1e-12, (order, dirichlet, uf)

    @pytest.mark.parametrize("order", [1, 3, 5, 8])
    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_restricted_apply(self, order, dirichlet):
        sem = Sem2D(_mesh(), order=order, dirichlet=dirichlet)
        rng = np.random.default_rng(order)
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=max(1, sem.n_dof // 3), replace=False)
        ref = sem.operator("assembled").restrict(cols).apply(u)
        for uf in FUSED_PARAMS:
            restr = sem.operator("matfree", use_fused=uf).restrict(cols)
            assert _rel_err(restr.apply(u), ref) < 1e-12, (order, dirichlet, uf)
            assert restr.ops > 0

    @pytest.mark.parametrize("order", [2, 4])
    def test_reach_superset_of_assembled(self, order):
        """Matrix-free reach = all same-element DOFs: a valid superset of
        the assembled structural reach (supersets preserve the LTS
        scheme; see lts_newmark module docs)."""
        sem = Sem2D(_mesh(), order=order)
        mask = np.zeros(sem.n_dof, dtype=bool)
        mask[::7] = True
        reach_a = sem.operator("assembled").reach(mask)
        reach_m = sem.operator("matfree").reach(mask)
        assert np.all(reach_m | ~reach_a)  # reach_a implies reach_m

    def test_nnz_counts_contraction_flops(self):
        sem = Sem2D(_mesh(), order=4)
        op = sem.operator("matfree")
        assert op.nnz == sem.mesh.n_elements * op.kernel.flops_per_element
        # restriction ops scale with the touched element subset
        cols = np.arange(10)
        assert 0 < op.restrict(cols).ops < op.nnz


class TestElasticEquivalence:
    @pytest.mark.parametrize("order", range(1, 9))
    def test_full_apply(self, order):
        el = ElasticSem2D(_mesh((4, 3)), order=order, lam=2.3, mu=1.7, rho=1.1)
        u = np.random.default_rng(order).standard_normal(el.n_dof)
        ref = el.A @ u
        for uf in FUSED_PARAMS:
            op = el.operator("matfree", use_fused=uf)
            assert _rel_err(op @ u, ref) < 1e-12, (order, uf)

    @pytest.mark.parametrize("order", [2, 5])
    def test_restricted_apply(self, order):
        el = ElasticSem2D(_mesh((4, 3)), order=order, lam=2.3, mu=1.7, rho=1.1)
        rng = np.random.default_rng(order)
        u = rng.standard_normal(el.n_dof)
        cols = rng.choice(el.n_dof, size=el.n_dof // 4, replace=False)
        ref = el.operator("assembled").restrict(cols).apply(u)
        for uf in FUSED_PARAMS:
            restr = el.operator("matfree", use_fused=uf).restrict(cols)
            assert _rel_err(restr.apply(u), ref) < 1e-12, (order, uf)

    def test_rigid_motions_in_kernel(self):
        el = ElasticSem2D(_mesh((4, 3)), order=3, lam=2.0, mu=1.0)
        op = el.operator("matfree")
        rot = el.interpolate(lambda x, y: y, lambda x, y: -x)
        assert np.abs(op @ rot).max() < 1e-8
        for comp in (0, 1):
            u = np.zeros(el.n_dof)
            u[comp::2] = 1.0
            assert np.abs(op @ u).max() < 1e-9


class TestStiffnessOnly:
    """The K-only operators the distributed runtime consumes."""

    def test_local_stiffness_matches_partial_assembly(self):
        sem = Sem2D(_mesh(), order=3)
        ids = np.array([0, 3, 7, 11])
        gd = np.unique(sem.element_dofs[ids].ravel())
        ld = np.searchsorted(gd, sem.element_dofs[ids])
        for uf in FUSED_PARAMS:
            K = local_stiffness(sem, ids, ld, len(gd), use_fused=uf)
            u = np.random.default_rng(0).standard_normal(len(gd))
            # brute force: sum of dense element systems
            ref = np.zeros(len(gd))
            Ke, _ = sem.element_system_batch(ids)
            for m in range(len(ids)):
                ref[ld[m]] += Ke[m] @ u[ld[m]]
            assert _rel_err(K @ u, ref) < 1e-12

    def test_masked_subset_restricts_input_support(self):
        sem = Sem2D(_mesh(), order=3)
        op = matrix_free_operator(sem)
        K = MatrixFreeStiffness(op.kernel, sem.element_dofs, sem.n_dof)
        mask = np.zeros(sem.n_dof, dtype=bool)
        mask[sem.element_dofs[2]] = True
        sub = K.masked_subset(mask)
        u = np.random.default_rng(1).standard_normal(sem.n_dof)
        masked_u = np.where(mask, u, 0.0)
        assert _rel_err(sub @ u, K @ masked_u) < 1e-12
        assert sub.nnz < K.nnz  # fewer elements touched

    def test_empty_subset(self):
        sem = Sem2D(_mesh(), order=2)
        op = matrix_free_operator(sem)
        K = MatrixFreeStiffness(op.kernel, sem.element_dofs, sem.n_dof)
        sub = K.masked_subset(np.zeros(sem.n_dof, dtype=bool))
        assert not (sub @ np.ones(sem.n_dof)).any()


class TestKernelSpecDispatch:
    """Backend dispatch keys off the explicit kernel spec, 2D included."""

    def test_acoustic_spec(self):
        sem = Sem2D(_mesh(), order=3)
        spec = sem.kernel_spec()
        assert (spec.physics, spec.dim, spec.n_comp) == ("acoustic", 2, 1)
        assert spec.params["scales"].shape == (sem.mesh.n_elements, 2)
        sub = sem.kernel_spec(np.array([0, 2]))
        assert sub.params["scales"].shape == (2, 2)

    def test_elastic_spec(self):
        el = ElasticSem2D(_mesh((4, 3)), order=3, lam=2.0, mu=1.0)
        spec = el.kernel_spec()
        assert (spec.physics, spec.dim, spec.n_comp) == ("elastic", 2, 2)
        from repro.sem.matfree import ElasticKernel, kernel_from_spec

        assert isinstance(kernel_from_spec(spec), ElasticKernel)

    def test_unknown_physics_rejected(self):
        from repro.core.operator import KernelSpec
        from repro.sem.matfree import kernel_from_spec
        from repro.util.errors import SolverError

        spec = KernelSpec(physics="thermo", order=3, dim=2, n_comp=1, params={})
        with pytest.raises(SolverError, match="no element kernel"):
            kernel_from_spec(spec)

    def test_malformed_params_rejected(self):
        """Missing keys and wrong shapes are solver errors, not KeyErrors."""
        from repro.core.operator import KernelSpec
        from repro.sem.matfree import kernel_from_spec
        from repro.util.errors import SolverError

        h2 = np.ones((4, 2))
        bad = [
            # acoustic: missing / wrong-width scales
            KernelSpec("acoustic", 3, 2, 1, {}),
            KernelSpec("acoustic", 3, 2, 1, {"scales": np.ones((4, 3))}),
            # elastic: missing mu, missing h_axes, wrong-width h_axes
            KernelSpec("elastic", 3, 2, 2, {"lam": np.ones(4), "h_axes": h2}),
            KernelSpec("elastic", 3, 2, 2, {"lam": np.ones(4), "mu": np.ones(4)}),
            KernelSpec(
                "elastic", 3, 3, 3,
                {"lam": np.ones(4), "mu": np.ones(4), "h_axes": h2},
            ),
            # anisotropic: missing C, Voigt size not matching the dim
            KernelSpec("anisotropic_elastic", 3, 2, 2, {"h_axes": h2}),
            KernelSpec(
                "anisotropic_elastic", 3, 2, 2,
                {"C": np.ones((4, 6, 6)), "h_axes": h2},
            ),
        ]
        for spec in bad:
            with pytest.raises(SolverError):
                kernel_from_spec(spec)

    def test_sem1d_matfree_backend(self):
        """kernel_spec opens the matrix-free backend to 1D meshes too."""
        from repro.mesh import refined_interval
        from repro.sem import Sem1D

        mesh = refined_interval(n_coarse=4, n_fine=4, refinement=4)
        for dirichlet in (False, True):
            sem = Sem1D(mesh, order=4, dirichlet=dirichlet)
            spec = sem.kernel_spec()
            assert (spec.physics, spec.dim, spec.n_comp) == ("acoustic", 1, 1)
            u = np.random.default_rng(0).standard_normal(sem.n_dof)
            ref = sem.A @ u
            op = sem.operator("matfree", use_fused=False)
            assert _rel_err(op @ u, ref) < 1e-12


class TestFusedGating:
    def test_forcing_numpy_path_works(self):
        sem = Sem2D(_mesh(), order=2)
        op = sem.operator("matfree", use_fused=False)
        assert op._stiffness._plan is None  # numpy path pinned
        assert np.isfinite(op @ np.ones(sem.n_dof)).all()

    @pytest.mark.skipif(not fused.available(), reason="no C compiler")
    def test_fused_plan_built_when_available(self):
        sem = Sem2D(_mesh(), order=2)
        assert sem.operator("matfree")._stiffness._plan is not None

    def test_unknown_backend_rejected(self):
        from repro.util.errors import SolverError

        sem = Sem2D(_mesh(), order=2)
        with pytest.raises(SolverError):
            sem.operator("turbo")
