"""Determinism of the pooled scatter plan (hot-path PR regression suite).

The pooled matrix-free kernels replace the seed's per-call
``np.bincount`` scatter with a precomputed single-entry-column CSC plan
(:class:`repro.sem.matfree._ScatterPlan`) that can also fold the
``M^{-1}`` coefficient into the accumulation.  Three properties keep
that substitution safe:

* **bitwise vs bincount** — the CSC kernel runs exactly bincount's
  accumulation loop, so an unfolded plan is bitwise-equal to the seed
  scatter;
* **run-to-run bitwise determinism** — repeated applies, and applies
  through independently constructed pooled operators, produce identical
  bits (no ordering or workspace-content dependence);
* **<= 1e-12 agreement with the seed tier** — folding ``M^{-1}`` into
  the plan data commutes through the sum only to rounding (~1 ulp), so
  pooled results must stay within 1e-12 of ``pooled=False`` results,
  for full and level-restricted applies, 2D/3D, all three physics.
"""

import numpy as np
import pytest

from repro.mesh import uniform_grid
from repro.sem import (
    AnisotropicElasticSemND,
    ElasticSem2D,
    ElasticSem3D,
    Sem2D,
    Sem3D,
    isotropic_stiffness,
)
from repro.sem.matfree import _ScatterPlan


def _rel_err(got, ref):
    return np.abs(got - ref).max() / max(np.abs(ref).max(), 1e-30)


def _make_sem(physics: str, dim: int):
    grid = (4, 3) if dim == 2 else (3, 2, 2)
    mesh = uniform_grid(grid, tuple(1.0 + 0.2 * a for a in range(dim)))
    mesh.c = mesh.c.copy()
    mesh.c[mesh.n_elements // 2] = 3.0
    order = 4 if dim == 2 else 3
    if physics == "acoustic":
        return (Sem2D if dim == 2 else Sem3D)(mesh, order=order)
    if physics == "elastic":
        cls = ElasticSem2D if dim == 2 else ElasticSem3D
        return cls(mesh, order=order, lam=2.0, mu=1.0, rho=1.3)
    rng = np.random.default_rng(7)
    lam = 2.0 + rng.random(mesh.n_elements)
    mu = 1.0 + rng.random(mesh.n_elements)
    return AnisotropicElasticSemND(
        mesh, order=order, C=isotropic_stiffness(lam, mu, dim), rho=1.1
    )


class TestScatterPlanUnit:
    def test_matches_bincount_bitwise(self):
        rng = np.random.default_rng(0)
        n_dof = 200
        ed = rng.integers(0, n_dof, size=(30, 16))
        vals = rng.standard_normal(ed.size)
        plan = _ScatterPlan(ed, n_dof)
        out = np.empty(n_dof)
        plan.scatter(vals, out)
        ref = np.bincount(ed.ravel(), weights=vals, minlength=n_dof)
        assert np.array_equal(out, ref)

    def test_folded_coeff_agrees_with_seed_order(self):
        """Folding c into the accumulation (sum of c*v) differs from the
        seed's c*(sum of v) only by rounding — well under 1e-12."""
        rng = np.random.default_rng(1)
        n_dof = 150
        ed = rng.integers(0, n_dof, size=(25, 9))
        vals = rng.standard_normal(ed.size)
        coeff = 0.5 + rng.random(n_dof)
        plan = _ScatterPlan(ed, n_dof, coeff=coeff)
        out = np.empty(n_dof)
        plan.scatter(vals, out)
        ref = coeff * np.bincount(ed.ravel(), weights=vals, minlength=n_dof)
        if not plan.folds_coeff:  # scipy internals unavailable: seed path
            assert np.array_equal(out, ref)
        else:
            assert _rel_err(out, ref) < 1e-12

    def test_scatter_is_repeatable_bitwise(self):
        rng = np.random.default_rng(2)
        n_dof = 100
        ed = rng.integers(0, n_dof, size=(20, 4))
        vals = rng.standard_normal(ed.size)
        coeff = 0.5 + rng.random(n_dof)
        plan = _ScatterPlan(ed, n_dof, coeff=coeff)
        a, b = np.empty(n_dof), np.full(n_dof, np.nan)
        plan.scatter(vals, a)
        plan.scatter(vals, b)  # must fully overwrite, including zeros
        assert np.array_equal(a, b)


@pytest.mark.parametrize("physics", ["acoustic", "elastic", "anisotropic"])
@pytest.mark.parametrize("dim", [2, 3])
class TestPooledOperatorDeterminism:
    def test_full_apply(self, physics, dim):
        sem = _make_sem(physics, dim)
        rng = np.random.default_rng(dim)
        u = rng.standard_normal(sem.n_dof)
        seed_op = sem.operator("matfree", use_fused=False, pooled=False)
        pooled_op = sem.operator("matfree", use_fused=False, pooled=True)
        ref = seed_op @ u
        got1 = np.array(pooled_op @ u)
        got2 = np.array(pooled_op @ u)  # same operator, warm workspace
        fresh = np.array(
            sem.operator("matfree", use_fused=False, pooled=True) @ u
        )
        assert np.array_equal(got1, got2), (physics, dim)
        assert np.array_equal(got1, fresh), (physics, dim)
        assert _rel_err(got1, ref) < 1e-12, (physics, dim)

    def test_restricted_apply(self, physics, dim):
        sem = _make_sem(physics, dim)
        rng = np.random.default_rng(10 + dim)
        u = rng.standard_normal(sem.n_dof)
        cols = rng.choice(sem.n_dof, size=max(1, sem.n_dof // 3), replace=False)
        seed_r = sem.operator("matfree", use_fused=False, pooled=False).restrict(cols)
        pooled_r = sem.operator("matfree", use_fused=False, pooled=True).restrict(cols)
        ref = np.array(seed_r.apply(u))
        got1 = np.array(pooled_r.apply(u))
        got2 = np.array(pooled_r.apply(u))
        assert np.array_equal(got1, got2), (physics, dim)
        assert _rel_err(got1, ref) < 1e-12, (physics, dim)
