"""End-to-end integration tests across all packages.

Each test exercises a full pipeline a user of the library would run:
mesh -> levels -> SEM -> partition -> distributed execution -> metrics ->
performance simulation, asserting the paper's qualitative claims hold on
the assembled system (not just on isolated units).
"""

import numpy as np
import pytest

from repro.core import assign_levels, theoretical_speedup
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.core.newmark import staggered_initial_velocity
from repro.mesh import refined_interval, trench_mesh, uniform_grid
from repro.partition import (
    PARTITIONERS,
    lts_hypergraph,
    hypergraph_cutsize,
    mpi_volume,
    partition_report,
)
from repro.runtime import (
    CPU_NODE,
    ClusterSimulator,
    DistributedLTSSolver,
    MailboxWorld,
    build_rank_layout,
)
from repro.runtime.perfmodel import scaled
from repro.sem import Sem1D, Sem2D, point_source, ricker


class TestFullPipeline1D:
    """Seismic-shot pipeline on a refined 1D mesh, distributed 3 ways."""

    def test_source_to_seismogram_distributed_equals_serial(self):
        mesh = refined_interval(n_coarse=18, n_fine=6, refinement=4, coarse_h=0.2)
        sem = Sem1D(mesh, order=4)
        levels = assign_levels(mesh, c_cfl=0.4, order=4)
        dof_level = dof_levels_from_elements(sem.element_dofs, levels.level, sem.n_dof)
        src = sem.nearest_dof(0.5)
        force = point_source(sem.n_dof, src, sem.M, ricker(f0=1.5))
        rec = sem.nearest_dof(3.0)

        u = np.zeros(sem.n_dof)
        v = np.zeros(sem.n_dof)
        serial = LTSNewmarkSolver(sem.A, dof_level, levels.dt, force=force)
        trace_serial = []
        for _ in range(40):
            u, v = serial.step(u, v)
            trace_serial.append(u[rec])

        parts = PARTITIONERS["SCOTCH-P"](mesh, levels, 3, seed=0)
        layout = build_rank_layout(sem, parts, 3, dof_level=dof_level)
        world = MailboxWorld(3)
        dist = DistributedLTSSolver(layout, levels.dt, world=world, force=force)
        ul = layout.scatter(np.zeros(sem.n_dof))
        vl = layout.scatter(np.zeros(sem.n_dof))
        trace_dist = []
        for _ in range(40):
            dist.step(ul, vl)
            trace_dist.append(layout.gather(ul)[rec])

        trace_serial = np.asarray(trace_serial)
        trace_dist = np.asarray(trace_dist)
        assert np.max(np.abs(trace_serial)) > 0  # the wave actually arrived
        assert np.max(np.abs(trace_serial - trace_dist)) < 1e-12
        assert world.pending() == 0


class TestPartitionToSimulation:
    """Mesh -> partition -> simulated wall-clock, checking Fig-9 claims."""

    @pytest.fixture(scope="class")
    def setup(self):
        mesh = trench_mesh(nx=12, ny=12, nz=6)
        levels = assign_levels(mesh)
        machine = scaled(CPU_NODE, 100.0)
        return mesh, levels, machine

    def test_lts_aware_beats_baseline_wallclock(self, setup):
        mesh, levels, machine = setup
        k = 8
        naive = PARTITIONERS["SCOTCH"](mesh, levels, k, seed=0)
        aware = PARTITIONERS["SCOTCH-P"](mesh, levels, k, seed=0)
        t_naive = ClusterSimulator(mesh, levels, naive, k, machine).lts_cycle()
        t_aware = ClusterSimulator(mesh, levels, aware, k, machine).lts_cycle()
        assert t_aware.cycle_time < t_naive.cycle_time

    def test_lts_beats_non_lts_for_every_strategy(self, setup):
        mesh, levels, machine = setup
        k = 8
        for name, fn in PARTITIONERS.items():
            parts = fn(mesh, levels, k, seed=0)
            sim = ClusterSimulator(mesh, levels, parts, k, machine)
            assert sim.lts_cycle().performance > sim.non_lts_cycle().performance, name

    def test_simulated_speedup_bounded_by_model(self, setup):
        mesh, levels, machine = setup
        k = 8
        ts = theoretical_speedup(levels)
        parts = PARTITIONERS["SCOTCH-P"](mesh, levels, k, seed=0)
        sim = ClusterSimulator(mesh, levels, parts, k, machine)
        speedup = sim.lts_cycle().performance / sim.non_lts_cycle().performance
        # Cache effects can push slightly past the pure-work model; stalls
        # and comm push below it.  It must stay in a sane band.
        assert 0.5 * ts < speedup < 1.5 * ts

    def test_report_and_volume_consistency(self, setup):
        mesh, levels, machine = setup
        parts = PARTITIONERS["PaToH 0.05"](mesh, levels, 4, seed=0)
        rep = partition_report(mesh, levels, parts, 4)
        h = lts_hypergraph(mesh, levels)
        assert rep.mpi_volume == pytest.approx(hypergraph_cutsize(h, parts, 4))
        assert rep.mpi_volume == pytest.approx(mpi_volume(mesh, levels, parts, 4))


class TestVelocityContrastPipeline2D:
    """2D: levels from velocity contrast, optimized LTS, partition, run."""

    def test_end_to_end(self):
        mesh = uniform_grid((8, 8))
        mesh.c = mesh.c.copy()
        mesh.c[27:29] = 4.0
        mesh.c[35:37] = 4.0
        sem = Sem2D(mesh, order=3)
        levels = assign_levels(mesh, c_cfl=0.4, order=3)
        assert levels.n_levels >= 2
        assert theoretical_speedup(levels) > 1.5

        dof_level = dof_levels_from_elements(sem.element_dofs, levels.level, sem.n_dof)
        u0 = np.exp(-((sem.xy[:, 0] - 4) ** 2 + (sem.xy[:, 1] - 4) ** 2))
        v0 = staggered_initial_velocity(sem.A, levels.dt, u0, np.zeros_like(u0))

        u_ref, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="reference").run(
            u0, v0, 5
        )
        u_opt, _ = LTSNewmarkSolver(sem.A, dof_level, levels.dt, mode="optimized").run(
            u0, v0, 5
        )
        assert np.max(np.abs(u_ref - u_opt)) < 1e-12

        parts = PARTITIONERS["MeTiS"](mesh, levels, 4, seed=0)
        layout = build_rank_layout(sem, parts, 4, dof_level=dof_level)
        u_dist, _ = DistributedLTSSolver(layout, levels.dt).run(u0, v0, 5)
        assert np.max(np.abs(u_dist - u_ref)) < 1e-11


class TestScalingShapes:
    """Coarse end-to-end check of the strong-scaling story (Fig. 9/13)."""

    def test_lts_scaling_efficiency_degrades_with_granularity(self):
        mesh = trench_mesh(nx=12, ny=12, nz=6)
        levels = assign_levels(mesh)
        machine = scaled(CPU_NODE, 100.0)
        ts = theoretical_speedup(levels)
        effs = []
        ref = None
        for k in (4, 16, 64):
            parts = PARTITIONERS["SCOTCH-P"](mesh, levels, k, seed=0)
            sim = ClusterSimulator(mesh, levels, parts, k, machine)
            perf = sim.lts_cycle().performance
            if ref is None:
                ref = sim.non_lts_cycle().performance
            effs.append(perf / (ref * (k / 4) * ts))
        # Efficiency at 64 ranks is materially below the 4-rank value:
        # the finest level has run out of elements per rank.
        assert effs[-1] < 0.9 * effs[0]
