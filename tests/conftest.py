"""Shared fixtures: small meshes, assemblies, and level assignments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import assign_levels
from repro.mesh import refined_interval, trench_mesh, uniform_grid


@pytest.fixture(scope="session")
def small_trench():
    """Small 3D trench mesh with 4 LTS levels (session-cached)."""
    return trench_mesh(nx=12, ny=12, nz=6)


@pytest.fixture(scope="session")
def small_trench_levels(small_trench):
    return assign_levels(small_trench)


@pytest.fixture(scope="session")
def refined_1d():
    """1D mesh with a 4x-refined centre block (the Fig. 1 setting)."""
    return refined_interval(n_coarse=12, n_fine=8, refinement=4, coarse_h=0.125)


@pytest.fixture(scope="session")
def grid2d():
    """Uniform 6x6 quad mesh with a high-velocity inclusion (2 levels+)."""
    mesh = uniform_grid((6, 6))
    mesh.c = mesh.c.copy()
    mesh.c[14:16] = 4.0  # fast block -> locally small stable step
    return mesh


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
