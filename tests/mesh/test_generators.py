"""Tests for the benchmark mesh families, pinned to the paper's Fig. 5."""

import numpy as np
import pytest

from repro.core import assign_levels, theoretical_speedup
from repro.mesh import (
    BENCHMARK_FAMILIES,
    benchmark_mesh,
    crust_mesh,
    embedding_mesh,
    refined_interval,
    trench_big_mesh,
    trench_mesh,
    uniform_grid,
)
from repro.util import MeshError


class TestRefinedInterval:
    def test_sizes(self):
        m = refined_interval(4, 3, refinement=4, coarse_h=1.0)
        assert np.isclose(m.h.min(), 0.25) and np.isclose(m.h.max(), 1.0)
        assert m.n_elements == 7

    @pytest.mark.parametrize("pos", ["center", "left", "right"])
    def test_positions_contiguous(self, pos):
        m = refined_interval(4, 2, refinement=2, fine_position=pos)
        x = m.coords[:, 0]
        assert np.all(np.diff(np.sort(x)) > 0)

    def test_bad_position_raises(self):
        with pytest.raises(MeshError):
            refined_interval(2, 2, fine_position="middle")

    def test_total_length(self):
        m = refined_interval(4, 4, refinement=4, coarse_h=1.0)
        assert np.isclose(m.coords[:, 0].max(), 4 + 4 * 0.25)


class TestUniformGrid:
    def test_rejects_empty_axis(self):
        with pytest.raises(MeshError):
            uniform_grid((0, 3))

    def test_lengths_control_spacing(self):
        m = uniform_grid((4,), (2.0,))
        assert np.allclose(m.h, 0.5)


# Paper Fig. 5: family -> (theoretical speedup, n_levels)
FIG5 = {
    "trench": (6.7, 4),
    "embedding": (7.9, 4),
    "crust": (1.9, 2),
    "trench_big": (21.7, 6),
}


class TestFig5Calibration:
    """Default generator parameters must reproduce Fig. 5's speedups."""

    @pytest.mark.parametrize("family", sorted(FIG5))
    def test_level_count(self, family):
        mesh = BENCHMARK_FAMILIES[family]()
        a = assign_levels(mesh)
        assert a.n_levels == FIG5[family][1]

    @pytest.mark.parametrize("family", sorted(FIG5))
    def test_theoretical_speedup_within_10pct(self, family):
        mesh = BENCHMARK_FAMILIES[family]()
        a = assign_levels(mesh)
        s = theoretical_speedup(a)
        target = FIG5[family][0]
        assert abs(s - target) / target < 0.10, f"{family}: {s:.2f} vs {target}"

    def test_every_level_populated(self):
        for family in FIG5:
            a = assign_levels(BENCHMARK_FAMILIES[family]())
            assert np.all(a.counts() > 0), family


class TestFamilyGeometry:
    def test_trench_refinement_is_a_strip(self):
        m = trench_mesh(nx=20, ny=16, nz=8)
        fine = m.h < 0.9
        cents = m.element_centroids()[fine]
        # The strip spans the full x extent but is localized in y and z.
        assert cents[:, 0].max() - cents[:, 0].min() > 18
        assert cents[:, 1].max() - cents[:, 1].min() < 16
        assert cents[:, 2].min() < 1.0  # hugs the surface

    def test_embedding_refinement_is_interior(self):
        m = embedding_mesh(nx=16, ny=16, nz=16)
        fine = m.h < 0.9
        cents = m.element_centroids()[fine]
        centre = np.array([8.0, 8.0, 8.0])
        assert np.all(np.linalg.norm(cents - centre, axis=1) < 8)

    def test_crust_refines_entire_surface(self):
        m = crust_mesh(nx=8, ny=8, nz=10)
        fine = m.h < 0.9
        cents = m.element_centroids()
        surface = cents[:, 2] < 1.0
        assert np.array_equal(fine, surface)

    def test_crust_rejects_bad_layers(self):
        with pytest.raises(MeshError):
            crust_mesh(nz=4, surface_layers=4)

    def test_trench_big_has_six_sizes(self):
        m = trench_big_mesh()
        assert len(np.unique(m.h)) == 6


class TestBenchmarkMeshDispatch:
    def test_unknown_family(self):
        with pytest.raises(MeshError):
            benchmark_mesh("volcano")

    def test_scale_changes_resolution(self):
        small = benchmark_mesh("trench", scale=0.5)
        full = benchmark_mesh("trench")
        assert small.n_elements < full.n_elements

    def test_explicit_kwargs_win_over_scale(self):
        m = benchmark_mesh("trench", scale=0.5, nx=10)
        assert m.name == "trench"
