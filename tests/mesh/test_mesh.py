"""Unit tests for the Mesh data structure (connectivity, dual graph)."""

import numpy as np
import pytest

from repro.mesh import Mesh, uniform_grid, uniform_interval
from repro.util import MeshError


class TestMeshValidation:
    def test_rejects_bad_dim(self):
        with pytest.raises(MeshError):
            Mesh(dim=4, coords=np.zeros((2, 4)), elements=np.zeros((1, 16), dtype=int),
                 h=np.ones(1), c=np.ones(1))

    def test_rejects_wrong_corner_count(self):
        with pytest.raises(MeshError, match="corner nodes"):
            Mesh(dim=2, coords=np.zeros((4, 2)), elements=np.zeros((1, 8), dtype=int),
                 h=np.ones(1), c=np.ones(1))

    def test_rejects_out_of_range_connectivity(self):
        with pytest.raises(MeshError, match="outside"):
            Mesh(dim=1, coords=np.zeros((2, 1)),
                 elements=np.array([[0, 5]]), h=np.ones(1), c=np.ones(1))

    def test_rejects_nonpositive_h(self):
        with pytest.raises(MeshError, match="h must be"):
            Mesh(dim=1, coords=np.array([[0.0], [1.0]]),
                 elements=np.array([[0, 1]]), h=np.array([0.0]), c=np.ones(1))

    def test_rejects_nonpositive_c(self):
        with pytest.raises(MeshError, match="c must be"):
            Mesh(dim=1, coords=np.array([[0.0], [1.0]]),
                 elements=np.array([[0, 1]]), h=np.ones(1), c=np.array([-1.0]))


class TestCounts:
    @pytest.mark.parametrize("shape", [(5,), (3, 4), (2, 3, 4)])
    def test_element_and_node_counts(self, shape):
        m = uniform_grid(shape)
        assert m.n_elements == int(np.prod(shape))
        assert m.n_nodes == int(np.prod([n + 1 for n in shape]))

    def test_dt_local_is_h_over_c(self):
        m = uniform_interval(4, length=2.0, c=2.0)
        assert np.allclose(m.dt_local, 0.25)


class TestDualGraph:
    def test_1d_chain_adjacency(self):
        m = uniform_interval(5)
        xadj, adjncy = m.dual_graph()
        degrees = np.diff(xadj)
        assert degrees[0] == 1 and degrees[-1] == 1
        assert np.all(degrees[1:-1] == 2)

    def test_2d_interior_degree_four(self):
        m = uniform_grid((4, 4))
        xadj, _ = m.dual_graph()
        degrees = np.diff(xadj)
        # corner elements have 2 neighbours, edges 3, interior 4
        assert sorted(np.unique(degrees)) == [2, 3, 4]
        assert degrees.sum() == 2 * (2 * 4 * 3)  # 2 * #faces_interior

    def test_3d_interior_degree_six(self):
        m = uniform_grid((3, 3, 3))
        xadj, adjncy = m.dual_graph()
        centre = 13  # middle element of 3x3x3 C-ordered grid
        assert len(m.neighbors_of(centre)) == 6

    def test_symmetry(self):
        m = uniform_grid((3, 4))
        xadj, adjncy = m.dual_graph()
        pairs = set()
        for u in range(m.n_elements):
            for v in adjncy[xadj[u]:xadj[u + 1]]:
                pairs.add((u, int(v)))
        assert all((v, u) in pairs for (u, v) in pairs)

    def test_neighbors_share_a_face(self):
        m = uniform_grid((3, 3, 2))
        for e in range(m.n_elements):
            faces_e = set(m.faces_of_element(e))
            for nb in m.neighbors_of(e):
                assert faces_e & set(m.faces_of_element(int(nb)))


class TestNodeIncidence:
    def test_total_incidence_matches_elements(self):
        m = uniform_grid((3, 3))
        inc = m.node_incidence()
        assert len(inc.elems) == m.n_elements * 4

    def test_interior_corner_touches_four_quads(self):
        m = uniform_grid((2, 2))
        inc = m.node_incidence()
        counts = np.diff(inc.xadj)
        assert counts.max() == 4  # the central node, as in the paper's Fig. 3
        assert np.count_nonzero(counts == 4) == 1

    def test_elements_of_are_consistent(self):
        m = uniform_grid((3, 2, 2))
        inc = m.node_incidence()
        for n in range(m.n_nodes):
            for e in inc.elements_of(n):
                assert n in m.elements[e]


class TestCentroids:
    def test_unit_grid_centroids(self):
        m = uniform_grid((2, 2))
        c = m.element_centroids()
        assert np.allclose(sorted(c[:, 0]), [0.5, 0.5, 1.5, 1.5])
