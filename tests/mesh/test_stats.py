"""Tests for DOF counting (paper Fig. 5 bookkeeping)."""

import numpy as np
import pytest

from repro.mesh import dof_count, mesh_stats, uniform_grid, uniform_interval


class TestDofCount:
    @pytest.mark.parametrize("n,order", [(3, 4), (5, 2), (1, 1)])
    def test_1d_formula(self, n, order):
        m = uniform_interval(n)
        assert dof_count(m, order) == n * order + 1

    @pytest.mark.parametrize("shape,order", [((3, 4), 4), ((2, 2), 2), ((5, 1), 3)])
    def test_2d_structured_formula(self, shape, order):
        m = uniform_grid(shape)
        expected = np.prod([order * s + 1 for s in shape])
        assert dof_count(m, order) == expected

    @pytest.mark.parametrize("shape,order", [((2, 3, 2), 4), ((2, 2, 2), 2)])
    def test_3d_structured_formula(self, shape, order):
        m = uniform_grid(shape)
        expected = np.prod([order * s + 1 for s in shape])
        assert dof_count(m, order) == expected

    def test_order4_hex_has_125_nodes_per_element(self):
        # Single hex: (4+1)^3 = 125, the paper's "125 nodes per element".
        m = uniform_grid((1, 1, 1))
        assert dof_count(m, 4) == 125


class TestMeshStats:
    def test_fields(self):
        m = uniform_grid((2, 2, 2))
        s = mesh_stats(m)
        assert s.n_elements == 8
        assert s.n_dof == dof_count(m, 4)
        assert s.dt_ratio == pytest.approx(1.0)

    def test_dt_ratio_reflects_refinement(self):
        from repro.mesh import refined_interval

        m = refined_interval(4, 4, refinement=8)
        assert mesh_stats(m).dt_ratio == pytest.approx(8.0)

    def test_row_is_renderable(self):
        row = mesh_stats(uniform_grid((2, 2))).row()
        assert all(isinstance(x, (str, int)) for x in row)
