"""Tests for the distance-band refinement machinery."""

import numpy as np
import pytest

from repro.mesh.generators import _apply_bands, _index_centroids
from repro.util import MeshError


class TestApplyBands:
    def test_band_sizes_halve(self):
        dist = np.array([0.5, 1.5, 2.5, 9.0])
        h = _apply_bands(1.0, dist, [1.0, 2.0, 3.0])
        assert np.allclose(h, [1 / 8, 1 / 4, 1 / 2, 1.0])

    def test_rejects_non_increasing_radii(self):
        with pytest.raises(MeshError):
            _apply_bands(1.0, np.zeros(3), [2.0, 1.0])

    def test_no_bands_keeps_h0(self):
        h = _apply_bands(2.0, np.arange(4, dtype=float), [])
        assert np.allclose(h, 2.0)

    def test_boundary_inclusive(self):
        h = _apply_bands(1.0, np.array([1.0]), [1.0])
        assert h[0] == pytest.approx(0.5)


class TestIndexCentroids:
    def test_unit_offsets(self):
        c = _index_centroids((2, 3))
        assert c.shape == (6, 2)
        assert c[0].tolist() == [0.5, 0.5]
        assert c[-1].tolist() == [1.5, 2.5]

    def test_matches_mesh_centroids_on_unit_grid(self):
        from repro.mesh import uniform_grid

        m = uniform_grid((3, 2, 2))
        c1 = _index_centroids((3, 2, 2))
        c2 = m.element_centroids()
        assert np.allclose(np.sort(c1, axis=0), np.sort(c2, axis=0))
