"""Distributed-vs-serial equivalence: the parallelization correctness proof.

The paper's parallel LTS must compute the same scheme as serial LTS for
*any* partition — balanced or not, LTS-aware or not.  These tests pin
that: the mailbox-MPI executor reproduces the serial solvers to float
round-off on 1D and 2D systems, across rank counts and partitioners.
"""

import numpy as np
import pytest

from repro.core import assign_levels
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.core.newmark import NewmarkSolver, staggered_initial_velocity
from repro.mesh import refined_interval, uniform_grid
from repro.runtime import (
    DistributedLTSSolver,
    DistributedNewmarkSolver,
    MailboxWorld,
    build_rank_layout,
)
from repro.sem import Sem1D, Sem2D
from repro.util.errors import PartitionError, SolverError


@pytest.fixture(scope="module")
def sys1d():
    mesh = refined_interval(12, 8, refinement=4, coarse_h=0.125)
    sem = Sem1D(mesh, order=4)
    a = assign_levels(mesh, c_cfl=0.4, order=4)
    dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
    u0 = np.exp(-((sem.x - sem.x.mean()) ** 2) / 0.05)
    v0 = staggered_initial_velocity(sem.A, a.dt, u0, np.zeros_like(u0))
    return mesh, sem, a, dof_level, u0, v0


def block_partition(n_elem: int, k: int) -> np.ndarray:
    return (np.arange(n_elem) * k // n_elem).astype(np.int64)


class TestLayout:
    def test_scatter_gather_roundtrip(self, sys1d):
        mesh, sem, a, dof_level, u0, _ = sys1d
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 3), 3)
        assert np.array_equal(lay.gather(lay.scatter(u0)), u0)

    def test_owner_masks_partition_dofs(self, sys1d):
        mesh, sem, _, _, _, _ = sys1d
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 4), 4)
        owned = np.zeros(sem.n_dof, dtype=int)
        for r in range(4):
            np.add.at(owned, lay.gdofs[r][lay.owner[r]], 1)
        assert np.all(owned == 1)

    def test_halo_symmetry(self, sys1d):
        mesh, sem, _, _, _, _ = sys1d
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 3), 3)
        for r in range(3):
            h = lay.halo[r]
            for peer, idx in zip(h.peers, h.local_indices):
                back = lay.halo[peer]
                assert r in back.peers
                j = back.peers.index(r)
                # Both sides exchange the same number of shared DOFs,
                # referring to the same global ids in the same order.
                assert len(back.local_indices[j]) == len(idx)
                assert np.array_equal(
                    lay.gdofs[r][idx], lay.gdofs[peer][back.local_indices[j]]
                )

    def test_mass_summed_across_ranks(self, sys1d):
        mesh, sem, _, _, _, _ = sys1d
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 2), 2)
        for r in range(2):
            assert np.allclose(lay.M_local[r], sem.M[lay.gdofs[r]])

    def test_bad_parts_shape_rejected(self, sys1d):
        _, sem, _, _, _, _ = sys1d
        with pytest.raises(PartitionError):
            build_rank_layout(sem, np.zeros(3, dtype=int), 2)


class TestDistributedNewmark:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_serial(self, sys1d, k):
        mesh, sem, a, _, u0, v0 = sys1d
        dt = a.dt_min
        us, vs = NewmarkSolver(sem.A, dt).run(u0, v0, 12)
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, k), k)
        ud, vd = DistributedNewmarkSolver(lay, dt).run(u0, v0, 12)
        assert np.max(np.abs(us - ud)) < 1e-12
        assert np.max(np.abs(vs - vd)) < 1e-12

    def test_no_pending_messages_after_run(self, sys1d):
        mesh, sem, a, _, u0, v0 = sys1d
        world = MailboxWorld(3)
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 3), 3)
        DistributedNewmarkSolver(lay, a.dt_min, world=world).run(u0, v0, 4)
        assert world.pending() == 0
        assert world.sent_messages > 0

    def test_leak_check_names_channels(self, sys1d):
        """run() ends with a mailbox-drained assertion; a stray message
        fails it with the leaked channel named."""
        from repro.util.errors import CommError

        mesh, sem, a, _, u0, v0 = sys1d
        world = MailboxWorld(2)
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 2), 2)
        solver = DistributedNewmarkSolver(lay, a.dt_min, world=world)
        solver.check_no_leaks()  # clean world passes
        world.comm(0).Send(np.zeros(3), dest=1, tag=77)
        with pytest.raises(CommError, match=r"undelivered.*tag=77"):
            solver.check_no_leaks()
        with pytest.raises(CommError, match="undelivered"):
            solver.run(u0, v0, 2)


class TestDistributedLTS:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_serial_reference(self, sys1d, k):
        mesh, sem, a, dof_level, u0, v0 = sys1d
        serial = LTSNewmarkSolver(sem.A, dof_level, a.dt, mode="reference")
        us, vs = serial.run(u0, v0, 8)
        lay = build_rank_layout(
            sem, block_partition(mesh.n_elements, k), k, dof_level=dof_level
        )
        ud, vd = DistributedLTSSolver(lay, a.dt).run(u0, v0, 8)
        assert np.max(np.abs(us - ud)) < 1e-11
        assert np.max(np.abs(vs - vd)) < 1e-9

    def test_matches_serial_for_lts_aware_partition(self, sys1d):
        """Partition from the real partitioner, not just block splits."""
        from repro.partition import partition_scotch_p

        mesh, sem, a, dof_level, u0, v0 = sys1d
        parts = partition_scotch_p(mesh, a, 3, seed=1)
        lay = build_rank_layout(sem, parts, 3, dof_level=dof_level)
        ud, _ = DistributedLTSSolver(lay, a.dt).run(u0, v0, 6)
        us, _ = LTSNewmarkSolver(sem.A, dof_level, a.dt, mode="optimized").run(u0, v0, 6)
        assert np.max(np.abs(us - ud)) < 1e-11

    def test_2d_velocity_contrast(self):
        mesh = uniform_grid((5, 5))
        mesh.c = mesh.c.copy()
        mesh.c[12] = 4.0
        sem = Sem2D(mesh, order=3)
        a = assign_levels(mesh, c_cfl=0.4, order=3)
        dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
        u0 = np.exp(-((sem.xy[:, 0] - 2.5) ** 2 + (sem.xy[:, 1] - 2.5) ** 2))
        v0 = staggered_initial_velocity(sem.A, a.dt, u0, np.zeros_like(u0))
        us, _ = LTSNewmarkSolver(sem.A, dof_level, a.dt).run(u0, v0, 6)
        parts = (np.arange(mesh.n_elements) % 4).astype(np.int64)
        lay = build_rank_layout(sem, parts, 4, dof_level=dof_level)
        ud, _ = DistributedLTSSolver(lay, a.dt).run(u0, v0, 6)
        assert np.max(np.abs(us - ud)) < 1e-11

    @pytest.mark.parametrize("physics", ["acoustic", "elastic"])
    def test_matfree_layout_backend_matches_assembled(self, physics):
        """Rank-local matrix-free stiffness (no rank ever assembles a
        matrix) reproduces the assembled-layout distributed solution."""
        mesh = uniform_grid((5, 5))
        mesh.c = mesh.c.copy()
        mesh.c[12] = 4.0
        if physics == "acoustic":
            sem = Sem2D(mesh, order=3)
        else:
            from repro.sem import ElasticSem2D

            sem = ElasticSem2D(mesh, order=3, lam=2.0, mu=1.0)
            mesh.c = sem.p_velocity()
        a = assign_levels(mesh, c_cfl=0.4, order=3)
        dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
        rng = np.random.default_rng(0)
        u0 = rng.standard_normal(sem.n_dof) * 0.1
        v0 = np.zeros(sem.n_dof)
        parts = (np.arange(mesh.n_elements) % 3).astype(np.int64)
        sols = {}
        for backend in ("assembled", "matfree"):
            lay = build_rank_layout(
                sem, parts, 3, dof_level=dof_level, backend=backend
            )
            sols[backend], _ = DistributedLTSSolver(lay, a.dt).run(u0, v0, 4)
        assert np.max(np.abs(sols["matfree"] - sols["assembled"])) < 1e-11

    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_3d_hex_trench_matches_serial(self, small_trench, backend):
        """The paper's workload class end-to-end: a 3D hex trench mesh
        runs a full distributed LTS cycle on both operator backends and
        reproduces the serial scheme to float round-off."""
        from repro.sem import Sem3D

        mesh = small_trench
        sem = Sem3D(mesh, order=2)
        a = assign_levels(mesh, c_cfl=0.4, order=2)
        assert a.n_levels >= 3  # multi-level recursion actually exercised
        dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
        rng = np.random.default_rng(0)
        u0 = rng.standard_normal(sem.n_dof) * 0.1
        v0 = np.zeros(sem.n_dof)
        us, _ = LTSNewmarkSolver(sem.A, dof_level, a.dt).run(u0, v0, 3)
        parts = (np.arange(mesh.n_elements) % 4).astype(np.int64)
        lay = build_rank_layout(sem, parts, 4, dof_level=dof_level, backend=backend)
        ud, _ = DistributedLTSSolver(lay, a.dt).run(u0, v0, 3)
        assert np.max(np.abs(us - ud)) < 1e-11

    def test_matfree_backend_restricts_per_level(self):
        """The matfree LTS executor applies level-restricted operators
        (element subsets), not masked full products."""
        mesh = uniform_grid((5, 5))
        mesh.c = mesh.c.copy()
        mesh.c[12] = 4.0
        sem = Sem2D(mesh, order=3)
        a = assign_levels(mesh, c_cfl=0.4, order=3)
        dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
        parts = np.zeros(mesh.n_elements, dtype=np.int64)
        lay = build_rank_layout(sem, parts, 1, dof_level=dof_level, backend="matfree")
        solver = DistributedLTSSolver(lay, a.dt)
        assert solver._K_level[0] is not None
        finest = max(solver.active_levels)
        # the finest level touches only a few elements -> much cheaper
        assert solver._K_level[0][finest].nnz < lay.K_local[0].nnz

    def test_requires_dof_levels(self, sys1d):
        mesh, sem, a, _, _, _ = sys1d
        lay = build_rank_layout(sem, block_partition(mesh.n_elements, 2), 2)
        with pytest.raises(SolverError, match="dof level"):
            DistributedLTSSolver(lay, a.dt)

    def test_message_count_scales_with_levels(self, sys1d):
        """Finer levels synchronize more often (the Fig. 2 cost model).

        Each level-k application exchanges over that level's coalesced
        plan, so the expected count sums 2^(k-1) applications times the
        messages the level's plan actually keeps — levels whose support
        never reaches the rank interface contribute zero messages."""
        mesh, sem, a, dof_level, u0, v0 = sys1d
        parts = block_partition(mesh.n_elements, 2)
        world = MailboxWorld(2)
        lay = build_rank_layout(sem, parts, 2, dof_level=dof_level)
        solver = DistributedLTSSolver(lay, a.dt, world=world)
        solver.run(u0, v0, 1)
        expected = sum(
            2 ** (k - 1) * solver._plans[k].messages_per_exchange()
            for k in solver.active_levels
        )
        assert world.sent_messages == expected
        # Coalescing must never send more than the seed's
        # every-channel-every-apply schedule, and at least one level must
        # actually reach the rank interface.
        full = solver.layout.exchange_plan().messages_per_exchange()
        assert 0 < expected <= full * sum(
            2 ** (k - 1) for k in solver.active_levels
        )
