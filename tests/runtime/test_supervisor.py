"""Supervised execution: restart budgets, backoff, and the incident log."""

import pytest

from repro.runtime import Supervisor
from repro.util.errors import (
    CommError,
    NumericalError,
    RankFailure,
    SolverError,
)


def flaky(fail_times: int, exc: Exception):
    """An attempt function failing ``fail_times`` times, then succeeding."""

    def attempt(i: int):
        if i < fail_times:
            raise exc
        return f"ok@{i}"

    return attempt


class TestSupervisor:
    def test_first_try_success_is_untouched(self):
        sup = Supervisor(max_restarts=3)
        assert sup.run(flaky(0, CommError("x"))) == "ok@0"
        assert sup.log == []

    def test_recovers_from_rank_failure(self):
        sup = Supervisor(max_restarts=2)
        assert sup.run(flaky(1, RankFailure("rank 1 died", rank=1))) == "ok@1"
        assert len(sup.log) == 1
        assert sup.log[0]["error"] == "RankFailure"
        assert sup.log[0]["retried"] is True

    def test_recovers_from_numerical_error(self):
        sup = Supervisor(max_restarts=1)
        assert sup.run(flaky(1, NumericalError("NaN", cycle=4))) == "ok@1"

    def test_budget_exhaustion_reraises_last_error(self):
        sup = Supervisor(max_restarts=2)
        with pytest.raises(CommError, match="always"):
            sup.run(flaky(99, CommError("always")))
        assert len(sup.log) == 3  # initial try + 2 restarts, all failed
        assert sup.log[-1]["retried"] is False

    def test_zero_restarts_fails_fast(self):
        sup = Supervisor(max_restarts=0)
        with pytest.raises(RankFailure):
            sup.run(flaky(1, RankFailure("dead")))
        assert len(sup.log) == 1

    def test_unrecoverable_error_propagates_immediately(self):
        sup = Supervisor(max_restarts=5)
        calls = []

        def attempt(i):
            calls.append(i)
            raise SolverError("logic bug, not a fault")

        with pytest.raises(SolverError):
            sup.run(attempt)
        assert calls == [0]
        assert sup.log == []

    def test_attempt_indices_increment(self):
        seen = []

        def attempt(i):
            seen.append(i)
            if i < 2:
                raise CommError("boom")
            return i

        assert Supervisor(max_restarts=3).run(attempt) == 2
        assert seen == [0, 1, 2]

    def test_exponential_backoff_uses_injected_clock(self):
        waits = []
        sup = Supervisor(
            max_restarts=3, backoff_seconds=0.5, sleep=waits.append
        )
        sup.run(flaky(3, CommError("x")))
        assert waits == [0.5, 1.0, 2.0]
        assert [e["backoff_seconds"] for e in sup.log] == waits

    def test_no_sleep_when_backoff_zero(self):
        called = []
        sup = Supervisor(max_restarts=1, sleep=lambda s: called.append(s))
        sup.run(flaky(1, CommError("x")))
        assert called == []

    def test_invalid_params_rejected(self):
        with pytest.raises(SolverError):
            Supervisor(max_restarts=-1)
        with pytest.raises(SolverError):
            Supervisor(backoff_seconds=-0.1)

    def test_custom_recover_on(self):
        sup = Supervisor(max_restarts=1, recover_on=(KeyError,))
        assert sup.run(flaky(1, KeyError("k"))) == "ok@1"
        with pytest.raises(CommError):
            Supervisor(max_restarts=1, recover_on=(KeyError,)).run(
                flaky(1, CommError("not listed"))
            )
