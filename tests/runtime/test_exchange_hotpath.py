"""Hot-path discipline of the distributed executors: coalesced exchange
plans, empty-channel skipping, and per-step allocation budgets.

The coalesced halo exchange packs through persistent per-channel
buffers and — with level-restricted supports — drops channel positions
that can only carry structural zeros.  A channel left empty disappears
*symmetrically* (neither side sends), so no zero-length messages are
ever queued and ``check_no_leaks()`` still holds.  The allocation test
mirrors the serial budgets of ``tests/core/test_hotpath_alloc.py`` for
the distributed LTS executor: the mailbox transport copies each message
payload (that is the transport's semantics, and the transient peak
reflects it), but the *net surviving* allocations per cycle must stay
small and fixed.
"""

import numpy as np
import pytest

from repro.core import assign_levels
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.core.newmark import staggered_initial_velocity
from repro.core.workspace import measure_hot_path
from repro.mesh import refined_interval, uniform_grid
from repro.runtime import DistributedLTSSolver, MailboxWorld, build_rank_layout
from repro.sem import Sem1D, Sem2D

#: Net tracemalloc blocks allowed to survive a steady-state LTS cycle.
ALLOC_BUDGET = 16


def block_partition(n_elem: int, k: int) -> np.ndarray:
    return (np.arange(n_elem) * k // n_elem).astype(np.int64)


@pytest.fixture(scope="module")
def sys1d():
    """Refinement in the middle of the interval: under a 3-way block
    partition the middle rank holds only fine-level elements, so the
    coarse level's support cannot reach the rank-0/rank-1 interface."""
    mesh = refined_interval(12, 8, refinement=4, coarse_h=0.125)
    sem = Sem1D(mesh, order=4)
    a = assign_levels(mesh, c_cfl=0.4, order=4)
    dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
    u0 = np.exp(-((sem.x - sem.x.mean()) ** 2) / 0.05)
    v0 = staggered_initial_velocity(sem.A, a.dt, u0, np.zeros_like(u0))
    return mesh, sem, a, dof_level, u0, v0


@pytest.fixture(scope="module")
def sys2d():
    mesh = uniform_grid((8, 8))
    mesh.c = mesh.c.copy()
    mesh.c[27] = 4.0
    mesh.c[36] = 2.0
    sem = Sem2D(mesh, order=4)
    a = assign_levels(mesh, c_cfl=0.4, order=4)
    dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
    u0 = np.exp(-((sem.xy - sem.xy.mean(axis=0)) ** 2).sum(axis=1))
    v0 = staggered_initial_velocity(sem.A, a.dt, u0, np.zeros_like(u0))
    return mesh, sem, a, dof_level, u0, v0


class TestEmptyChannelSkip:
    """Regression: a level whose support reaches no DOF shared by a peer
    pair must drop that channel outright instead of exchanging
    zero-length (or all-zero) messages."""

    def _solver(self, sys1d, k=3):
        mesh, sem, a, dof_level, _, _ = sys1d
        lay = build_rank_layout(
            sem, block_partition(mesh.n_elements, k), k, dof_level=dof_level
        )
        world = MailboxWorld(k)
        return DistributedLTSSolver(lay, a.dt, world=world), lay, world

    def test_coarse_level_plan_drops_far_channels(self, sys1d):
        solver, lay, _ = self._solver(sys1d)
        full = lay.exchange_plan()
        coarsest = min(solver.active_levels)
        assert max(solver.active_levels) > coarsest
        coarse_plan = solver._plans[coarsest]
        # The middle rank holds only fine elements, so the coarse level
        # shares no reachable DOF across the rank-0/rank-1 interface:
        # the channel present in the full plan must be gone (both ways).
        assert 1 in full.peers[0] and 0 in full.peers[1]
        assert 1 not in coarse_plan.peers[0]
        assert 0 not in coarse_plan.peers[1]
        assert coarse_plan.messages_per_exchange() < full.messages_per_exchange()

    def test_no_zero_length_channels_in_any_plan(self, sys1d):
        solver, lay, _ = self._solver(sys1d)
        plans = [lay.exchange_plan(), *solver._plans.values()]
        for plan in plans:
            for per_rank in plan.indices:
                for idx in per_rank:
                    assert len(idx) > 0

    def test_run_matches_serial_and_leaks_nothing(self, sys1d):
        mesh, sem, a, dof_level, u0, v0 = sys1d
        solver, _, world = self._solver(sys1d)
        u, v = solver.run(u0.copy(), v0.copy(), 4)  # run() checks leaks
        assert world.pending() == 0
        serial = LTSNewmarkSolver(sem.A, dof_level, a.dt)
        us, vs = u0.copy(), v0.copy()
        for _ in range(4):
            us, vs = serial.step(us, vs)
        assert np.abs(u - us).max() / np.abs(us).max() < 1e-12

    def test_skipping_reduces_messages(self, sys1d):
        """Per-level plans must send strictly fewer messages than the
        full-interface plan would across an LTS cycle."""
        mesh, sem, a, dof_level, u0, v0 = sys1d
        solver, lay, world = self._solver(sys1d)
        solver.run(u0.copy(), v0.copy(), 2)
        with_skip = world.sent_messages
        # Replay with every level forced onto the full-interface plan.
        solver2, _, world2 = self._solver(sys1d)
        solver2._plans = {k: solver2.layout.exchange_plan() for k in solver2._plans}
        solver2.run(u0.copy(), v0.copy(), 2)
        assert with_skip < world2.sent_messages


@pytest.mark.parametrize("backend", ["assembled", "matfree"])
def test_distributed_lts_allocation_budget(sys2d, backend):
    mesh, sem, a, dof_level, u0, v0 = sys2d
    k = 3
    lay = build_rank_layout(
        sem,
        block_partition(mesh.n_elements, k),
        k,
        dof_level=dof_level,
        backend=backend,
        use_fused=False if backend == "matfree" else None,
    )
    solver = DistributedLTSSolver(lay, a.dt, world=MailboxWorld(k))
    assert len(solver.active_levels) >= 2
    u_locals = lay.scatter(u0)
    v_locals = lay.scatter(v0)

    def step():
        solver.step(u_locals, v_locals)

    stats = measure_hot_path(step, n_steps=5, warmup=3)
    assert stats.allocs_per_step <= ALLOC_BUDGET, (backend, stats)
    assert solver.workspace_bytes() > 0
    solver.check_no_leaks()
