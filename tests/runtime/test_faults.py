"""Deterministic fault injection over the mailbox runtime."""

import numpy as np
import pytest

from repro.core import assign_levels
from repro.core.lts_newmark import LTSNewmarkSolver, dof_levels_from_elements
from repro.mesh import refined_interval
from repro.runtime import (
    DistributedLTSSolver,
    FaultEvent,
    FaultPlan,
    FaultyWorld,
    build_rank_layout,
)
from repro.sem import Sem1D
from repro.util.errors import CommError, RankFailure


@pytest.fixture(scope="module")
def sys1d():
    mesh = refined_interval(12, 8, refinement=4, coarse_h=0.125)
    sem = Sem1D(mesh, order=4)
    a = assign_levels(mesh, c_cfl=0.4, order=4)
    dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
    parts = (np.arange(mesh.n_elements) * 2 // mesh.n_elements).astype(np.int64)
    lay = build_rank_layout(sem, parts, 2, dof_level=dof_level)
    u0 = np.exp(-((sem.x - sem.x.mean()) ** 2) / 0.05)
    return sem, a, dof_level, lay, u0


class TestFaultEvent:
    def test_roundtrip_omits_defaults(self):
        e = FaultEvent("crash", superstep=3, rank=1)
        assert e.to_dict() == {"kind": "crash", "superstep": 3, "rank": 1}
        assert FaultEvent.from_dict(e.to_dict()) == e

    def test_unknown_kind_rejected(self):
        with pytest.raises(CommError, match="unknown fault kind"):
            FaultEvent("meteor")

    def test_crash_requires_rank(self):
        with pytest.raises(CommError, match="rank"):
            FaultEvent("crash", superstep=1)

    def test_unknown_key_rejected(self):
        with pytest.raises(CommError, match="unknown FaultEvent key"):
            FaultEvent.from_dict({"kind": "drop", "supersteep": 1})

    def test_bit_range_checked(self):
        with pytest.raises(CommError, match="bit"):
            FaultEvent("bitflip", bit=64)


class TestFaultPlan:
    def test_coerces_dicts(self):
        plan = FaultPlan(({"kind": "drop", "superstep": 2},))
        assert plan.events[0] == FaultEvent("drop", superstep=2)

    def test_for_attempt_filters(self):
        plan = FaultPlan(
            (
                FaultEvent("crash", rank=0, attempt=0),
                FaultEvent("crash", rank=1, attempt=1),
            )
        )
        assert [e.rank for e in plan.for_attempt(0)] == [0]
        assert [e.rank for e in plan.for_attempt(1)] == [1]
        assert plan.for_attempt(2) == ()

    def test_seeded_is_reproducible(self):
        a = FaultPlan.seeded(42, n_ranks=4, max_superstep=10)
        b = FaultPlan.seeded(42, n_ranks=4, max_superstep=10)
        assert a == b
        assert len(a.events) == 4  # one per rank by default
        assert {e.attempt for e in a.events} == {0, 1, 2, 3}
        assert FaultPlan.seeded(43, n_ranks=4, max_superstep=10) != a

    def test_seeded_message_kinds(self):
        plan = FaultPlan.seeded(
            7, n_ranks=3, max_superstep=5, kinds=("drop", "bitflip"), n_events=6
        )
        assert all(e.kind in ("drop", "bitflip") for e in plan.events)


class TestFaultyWorld:
    def test_empty_plan_is_transparent(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        v0 = np.zeros_like(u0)
        world = FaultyWorld(2, FaultPlan())
        ud, _ = DistributedLTSSolver(lay, a.dt, world=world).run(u0, v0, 4)
        us, _ = LTSNewmarkSolver(sem.A, dof_level, a.dt).run(u0, v0, 4)
        assert np.max(np.abs(us - ud)) < 1e-11
        assert world.injected == []

    def test_crash_raises_rank_failure_at_superstep(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        world = FaultyWorld(2, FaultPlan.crash(rank=1, superstep=2))
        solver = DistributedLTSSolver(lay, a.dt, world=world)
        with pytest.raises(RankFailure, match="rank 1 crashed at superstep 2") as exc:
            solver.run(u0, np.zeros_like(u0), 6)
        assert exc.value.rank == 1
        assert exc.value.superstep == 2
        assert solver.n_cycles_taken == 2  # cycles 0 and 1 completed

    def test_crash_is_a_comm_error(self):
        assert issubclass(RankFailure, CommError)

    def test_crash_only_fires_in_its_attempt(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        plan = FaultPlan.crash(rank=0, superstep=1, attempt=0)
        world = FaultyWorld(2, plan, attempt=1)
        ud, _ = DistributedLTSSolver(lay, a.dt, world=world).run(
            u0, np.zeros_like(u0), 4
        )
        assert np.all(np.isfinite(ud))
        assert world.injected == []

    def test_drop_surfaces_as_enriched_comm_error(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        plan = FaultPlan((FaultEvent("drop", superstep=1, src=0, dst=1),))
        world = FaultyWorld(2, plan)
        with pytest.raises(CommError, match="pending for rank"):
            DistributedLTSSolver(lay, a.dt, world=world).run(
                u0, np.zeros_like(u0), 4
            )
        assert world.injected[0]["kind"] == "drop"

    def test_duplicate_trips_leak_check(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        plan = FaultPlan((FaultEvent("duplicate", superstep=0, src=0, dst=1),))
        world = FaultyWorld(2, plan)
        with pytest.raises(CommError, match="undelivered"):
            DistributedLTSSolver(lay, a.dt, world=world).run(
                u0, np.zeros_like(u0), 2
            )

    def test_bitflip_perturbs_solution_deterministically(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        v0 = np.zeros_like(u0)
        clean, _ = LTSNewmarkSolver(sem.A, dof_level, a.dt).run(u0, v0, 4)

        def flipped_run():
            plan = FaultPlan((FaultEvent("bitflip", superstep=1, bit=60),))
            world = FaultyWorld(2, plan)
            u, _ = DistributedLTSSolver(lay, a.dt, world=world).run(u0, v0, 4)
            return u, world.injected

        u1, log1 = flipped_run()
        u2, log2 = flipped_run()
        assert np.array_equal(u1, u2), "same plan must corrupt identically"
        assert log1 == log2
        assert log1[0]["kind"] == "bitflip"
        assert not np.array_equal(u1, clean), "a high-exponent flip must show"

    def test_count_bounds_multiple_messages(self, sys1d):
        sem, a, dof_level, lay, u0 = sys1d
        plan = FaultPlan((FaultEvent("drop", superstep=0, count=2),))
        world = FaultyWorld(2, plan)
        with pytest.raises(CommError):
            DistributedLTSSolver(lay, a.dt, world=world).run(
                u0, np.zeros_like(u0), 2
            )
        assert sum(1 for f in world.injected if f["kind"] == "drop") == 2
