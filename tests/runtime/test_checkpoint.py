"""Checkpoint/restart: atomic persistence, and kill-and-resume determinism."""

import numpy as np
import pytest

from repro.core import LTSNewmarkSolver, NewmarkSolver, assign_levels
from repro.core.lts_newmark import dof_levels_from_elements
from repro.mesh import refined_interval
from repro.runtime import (
    CheckpointState,
    DistributedLTSSolver,
    build_rank_layout,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from repro.sem import Sem1D
from repro.util.errors import SolverError


@pytest.fixture(scope="module")
def sys1d():
    mesh = refined_interval(12, 8, refinement=4, coarse_h=0.125)
    sem = Sem1D(mesh, order=4)
    a = assign_levels(mesh, c_cfl=0.4, order=4)
    dof_level = dof_levels_from_elements(sem.element_dofs, a.level, sem.n_dof)
    u0 = np.exp(-((sem.x - sem.x.mean()) ** 2) / 0.05)
    return sem, a, dof_level, u0


class TestPersistence:
    def test_roundtrip_bitwise(self, tmp_path, rng):
        state = CheckpointState(
            cycle=7,
            t=0.7,
            u=rng.standard_normal(20),
            v=rng.standard_normal(20),
            traces=rng.standard_normal((7, 2)),
            dt=0.1,
            n_cycles_total=12,
            config_hash="abc123",
        )
        path = save_checkpoint(tmp_path / "ck.npz", state)
        back = load_checkpoint(path)
        assert back.cycle == 7 and back.t == 0.7
        assert np.array_equal(back.u, state.u)
        assert np.array_equal(back.v, state.v)
        assert np.array_equal(back.traces, state.traces)
        assert back.dt == 0.1 and back.n_cycles_total == 12
        assert back.config_hash == "abc123"
        assert back.n_ranks == 1 and back.u_locals is None

    def test_roundtrip_distributed_replicas(self, tmp_path, rng):
        u_locals = [rng.standard_normal(5), rng.standard_normal(7)]
        v_locals = [rng.standard_normal(5), rng.standard_normal(7)]
        state = CheckpointState(
            cycle=2, t=0.2, u=rng.standard_normal(10), v=rng.standard_normal(10),
            u_locals=u_locals, v_locals=v_locals,
        )
        back = load_checkpoint(save_checkpoint(tmp_path / "ck", state))
        assert back.n_ranks == 2
        for a, b in zip(back.u_locals, u_locals):
            assert np.array_equal(a, b)
        for a, b in zip(back.v_locals, v_locals):
            assert np.array_equal(a, b)

    def test_mismatched_replicas_rejected(self, tmp_path):
        state = CheckpointState(
            cycle=1, t=0.1, u=np.zeros(3), v=np.zeros(3),
            u_locals=[np.zeros(2)], v_locals=None,
        )
        with pytest.raises(SolverError, match="pair up"):
            save_checkpoint(tmp_path / "ck", state)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SolverError, match="not found"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an npz at all")
        with pytest.raises(SolverError, match="corrupt|unreadable"):
            load_checkpoint(bad)

    def test_future_version_rejected(self, tmp_path, monkeypatch):
        import repro.runtime.checkpoint as ckpt

        state = CheckpointState(cycle=1, t=0.1, u=np.zeros(2), v=np.zeros(2))
        monkeypatch.setattr(ckpt, "CHECKPOINT_VERSION", 99)
        path = save_checkpoint(tmp_path / "ck", state)
        monkeypatch.setattr(ckpt, "CHECKPOINT_VERSION", 1)
        with pytest.raises(SolverError, match="version 99"):
            load_checkpoint(path)

    def test_latest_and_prune(self, tmp_path):
        assert latest_checkpoint(tmp_path / "absent") is None
        state = CheckpointState(cycle=0, t=0.0, u=np.zeros(1), v=np.zeros(1))
        for cycle in (2, 10, 6):
            save_checkpoint(checkpoint_path(tmp_path, cycle), state)
        assert latest_checkpoint(tmp_path).name == "ckpt_00000010.npz"
        removed = prune_checkpoints(tmp_path, keep=2)
        assert [p.name for p in removed] == ["ckpt_00000002.npz"]
        assert sorted(p.name for p in tmp_path.glob("*.npz")) == [
            "ckpt_00000006.npz",
            "ckpt_00000010.npz",
        ]


class TestKillAndResume:
    def test_serial_lts_resume_is_bitwise(self, sys1d, tmp_path):
        """The core restart guarantee: run 12 cycles straight vs run 7,
        checkpoint, rebuild everything from the file, run 5 — identical
        bits out."""
        sem, a, dof_level, u0 = sys1d
        v0 = np.zeros_like(u0)

        ref_solver = LTSNewmarkSolver(sem.A, dof_level, a.dt)
        u_ref, v_ref = ref_solver.run(u0, v0, 12)

        first = LTSNewmarkSolver(sem.A, dof_level, a.dt)
        u, v = first.run(u0, v0, 7)
        st = first.state()
        path = save_checkpoint(
            tmp_path / "ck", CheckpointState(cycle=st["cycle"], t=st["t"], u=u, v=v)
        )

        back = load_checkpoint(path)  # "new process": only the file survives
        second = LTSNewmarkSolver(sem.A, dof_level, a.dt)
        second.restore(back.solver_state())
        assert second.n_cycles_taken == 7
        u2, v2 = second.run(back.u, back.v, 5)
        assert np.array_equal(u2, u_ref)
        assert np.array_equal(v2, v_ref)
        assert second.t == ref_solver.t

    def test_serial_newmark_resume_is_bitwise(self, sys1d):
        sem, a, _, u0 = sys1d
        v0 = np.zeros_like(u0)
        dt = a.dt_min
        u_ref, v_ref = NewmarkSolver(sem.A, dt).run(u0, v0, 10)
        first = NewmarkSolver(sem.A, dt)
        u, v = first.run(u0, v0, 4)
        second = NewmarkSolver(sem.A, dt)
        second.restore(first.state())
        u2, v2 = second.run(u, v, 6)
        assert np.array_equal(u2, u_ref) and np.array_equal(v2, v_ref)

    def test_distributed_resume_via_replicas_is_bitwise(self, sys1d, tmp_path):
        """Restoring the exact per-rank replicas keeps the distributed
        resume bitwise (scatter-from-global would round-off-perturb
        shared DOFs)."""
        sem, a, dof_level, u0 = sys1d
        v0 = np.zeros_like(u0)
        parts = (np.arange(sem.mesh.n_elements) * 3 // sem.mesh.n_elements).astype(
            np.int64
        )
        lay = build_rank_layout(sem, parts, 3, dof_level=dof_level)

        ref = DistributedLTSSolver(lay, a.dt)
        u_ref, v_ref = ref.run(u0, v0, 8)

        captured = {}

        def grab(cycle, u_locals, v_locals):
            captured["state"] = CheckpointState(
                cycle=cycle, t=cycle * a.dt, u=lay.gather(u_locals),
                v=lay.gather(v_locals),
                u_locals=[x.copy() for x in u_locals],
                v_locals=[x.copy() for x in v_locals],
            )

        DistributedLTSSolver(lay, a.dt).run(
            u0, v0, 8, checkpoint_every=5, on_checkpoint=grab
        )
        back = load_checkpoint(
            save_checkpoint(tmp_path / "ck", captured["state"])
        )

        solver = DistributedLTSSolver(lay, a.dt)
        solver.restore(back.solver_state())
        u_locals = [x.copy() for x in back.u_locals]
        v_locals = [x.copy() for x in back.v_locals]
        for _ in range(3):
            solver.step(u_locals, v_locals)
        assert np.array_equal(lay.gather(u_locals), u_ref)
        assert np.array_equal(lay.gather(v_locals), v_ref)

    def test_checkpoint_cadence_uses_absolute_cycles(self, sys1d):
        """A restored solver checkpoints at the same cycles the
        uninterrupted run would."""
        sem, a, dof_level, u0 = sys1d
        fired = []
        solver = LTSNewmarkSolver(sem.A, dof_level, a.dt)
        solver.restore({"t": 5 * a.dt, "cycle": 5})
        solver.run(
            u0, np.zeros_like(u0), 7, checkpoint_every=4,
            on_checkpoint=lambda cycle, u, v: fired.append(cycle),
        )
        assert fired == [8, 12]
