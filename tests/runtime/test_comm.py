"""Tests for the mailbox communicator."""

import numpy as np
import pytest

from repro.runtime import MailboxWorld
from repro.runtime.comm import allreduce_sum
from repro.util.errors import CommError


class TestMailbox:
    def test_send_recv_roundtrip(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        data = np.arange(5.0)
        c0.Send(data, dest=1, tag=7)
        out = c1.recv(source=0, tag=7)
        assert np.array_equal(out, data)

    def test_send_copies_buffer(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        data = np.zeros(3)
        c0.Send(data, dest=1)
        data[:] = 99.0
        assert np.array_equal(c1.recv(source=0), np.zeros(3))

    def test_recv_into_buffer(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        c0.Send(np.array([1.0, 2.0]), dest=1, tag=3)
        buf = np.zeros(2)
        c1.Recv(buf, source=0, tag=3)
        assert np.array_equal(buf, [1.0, 2.0])

    def test_recv_shape_mismatch_raises(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        c0.Send(np.zeros(3), dest=1)
        with pytest.raises(CommError, match="shape"):
            c1.Recv(np.zeros(2), source=0)

    def test_recv_empty_channel_raises(self):
        world = MailboxWorld(2)
        _, c1 = world.comms()
        with pytest.raises(CommError, match="no message"):
            c1.recv(source=0)

    def test_fifo_per_channel(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        c0.Send(np.array([1.0]), dest=1, tag=0)
        c0.Send(np.array([2.0]), dest=1, tag=0)
        assert c1.recv(0)[0] == 1.0
        assert c1.recv(0)[0] == 2.0

    def test_tags_are_independent_channels(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        c0.Send(np.array([1.0]), dest=1, tag=1)
        c0.Send(np.array([2.0]), dest=1, tag=2)
        assert c1.recv(0, tag=2)[0] == 2.0
        assert c1.recv(0, tag=1)[0] == 1.0

    def test_stats_and_pending(self):
        world = MailboxWorld(3)
        comms = world.comms()
        comms[0].Send(np.zeros(10), dest=2)
        assert world.sent_messages == 1
        assert world.sent_volume == 10
        assert world.pending() == 1
        comms[2].recv(0)
        assert world.pending() == 0

    def test_bad_rank_rejected(self):
        world = MailboxWorld(2)
        with pytest.raises(CommError):
            world.comm(5)
        with pytest.raises(CommError):
            world.comm(0).Send(np.zeros(1), dest=9)

    def test_sendrecv_symmetric(self):
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        c0.Send(np.array([10.0]), dest=1, tag=5)
        c1.Send(np.array([20.0]), dest=0, tag=5)
        assert c0.recv(1, tag=5)[0] == 20.0
        assert c1.recv(0, tag=5)[0] == 10.0

    def test_channels_lists_nonempty_boxes(self):
        world = MailboxWorld(3)
        comms = world.comms()
        assert world.channels() == {}
        comms[0].Send(np.zeros(2), dest=1, tag=4)
        comms[0].Send(np.zeros(2), dest=1, tag=4)
        comms[2].Send(np.zeros(1), dest=0, tag=0)
        assert world.channels() == {(0, 1, 4): 2, (2, 0, 0): 1}
        assert world.channels(dst=1) == {(0, 1, 4): 2}
        comms[1].recv(0, tag=4)
        comms[1].recv(0, tag=4)
        assert world.channels(dst=1) == {}

    def test_describe_channels(self):
        text = MailboxWorld.describe_channels({(0, 1, 4): 2, (2, 0, 0): 1})
        assert "src=0" in text and "dst=1" in text and "tag=4" in text
        assert "x2" in text

    def test_empty_recv_error_names_pending_channels(self):
        """The enriched diagnostic: a failed recv tells you what *is*
        queued for that rank, the first clue for a schedule bug."""
        world = MailboxWorld(2)
        c0, c1 = world.comms()
        c0.Send(np.zeros(1), dest=1, tag=9)
        with pytest.raises(CommError, match=r"pending for rank 1.*tag=9") as exc:
            c1.recv(source=0, tag=2)
        assert "no message" in str(exc.value)

    def test_empty_recv_error_when_nothing_pending(self):
        world = MailboxWorld(2)
        _, c1 = world.comms()
        with pytest.raises(CommError, match="no channels pending for rank 1"):
            c1.recv(source=0)

    def test_begin_superstep_is_a_noop_hook(self):
        world = MailboxWorld(2)
        world.begin_superstep()  # plain world: counts nothing, raises nothing
        c0, c1 = world.comms()
        c0.Send(np.ones(1), dest=1)
        assert c1.recv(0)[0] == 1.0


class TestAllreduce:
    def test_sum(self):
        world = MailboxWorld(3)
        comms = world.comms()
        vals = [np.full(2, float(r)) for r in range(3)]
        out = allreduce_sum(comms, vals)
        for o in out:
            assert np.array_equal(o, [3.0, 3.0])

    def test_length_mismatch(self):
        world = MailboxWorld(2)
        with pytest.raises(CommError):
            allreduce_sum(world.comms(), [np.zeros(1)])
