"""Tests for the machine model and cluster simulator (Figs. 9-13 engine)."""

import numpy as np
import pytest

from repro.core import assign_levels, theoretical_speedup
from repro.mesh import trench_mesh, uniform_grid
from repro.runtime import CPU_NODE, GPU_NODE, ClusterSimulator, MachineModel, cache_hit_metric
from repro.runtime.perfmodel import scaled
from repro.runtime.simulate import simulate_scaling
from repro.runtime.trace import render_timeline, trace_cycle


@pytest.fixture(scope="module")
def sim_setup():
    mesh = trench_mesh(nx=12, ny=12, nz=6)
    a = assign_levels(mesh)
    return mesh, a


class TestMachineModel:
    def test_cache_hit_fraction_decreasing(self):
        m = CPU_NODE
        assert m.cache_hit_fraction(10) > m.cache_hit_fraction(10_000)

    def test_gpu_has_no_cache_bonus(self):
        assert GPU_NODE.time_per_element(1) == GPU_NODE.time_per_element(1_000_000)

    def test_cpu_faster_with_small_working_set(self):
        assert CPU_NODE.time_per_element(10) < CPU_NODE.time_per_element(100_000)

    def test_compute_time_zero_elements(self):
        assert CPU_NODE.compute_time(0) == 0.0

    def test_gpu_launch_overhead_floor(self):
        t1 = GPU_NODE.compute_time(1)
        assert t1 > GPU_NODE.kernel_launch_overhead  # overhead dominates

    def test_comm_alpha_beta(self):
        m = CPU_NODE
        assert m.comm_time(2, 100.0) == pytest.approx(2 * m.alpha + 100 * m.beta)
        assert m.comm_time(0, 50.0) == 0.0

    def test_scaled_machine(self):
        s = scaled(CPU_NODE, 10.0)
        assert s.elem_step_cost == pytest.approx(10 * CPU_NODE.elem_step_cost)
        assert s.cache_capacity == pytest.approx(CPU_NODE.cache_capacity / 10)
        assert s.alpha == CPU_NODE.alpha  # latency is per event


class TestCacheMetric:
    def test_lts_beats_non_lts(self, sim_setup):
        """Fig. 12: per-level working sets raise the hit metric."""
        mesh, a = sim_setup
        counts = a.counts().astype(float) / 8.0  # per-rank share
        steps = 2.0 ** np.arange(a.n_levels)
        machine = scaled(CPU_NODE, 50.0)
        lts = cache_hit_metric(machine, counts, steps)
        non = cache_hit_metric(
            machine, np.array([counts.sum()]), np.array([a.p_max])
        )
        assert lts > non

    def test_more_ranks_more_hits(self, sim_setup):
        mesh, a = sim_setup
        machine = scaled(CPU_NODE, 50.0)
        steps = 2.0 ** np.arange(a.n_levels)
        h16 = cache_hit_metric(machine, a.counts() / 16.0, steps)
        h128 = cache_hit_metric(machine, a.counts() / 128.0, steps)
        assert h128 > h16


class TestClusterSimulator:
    def test_single_rank_no_comm_no_stall(self, sim_setup):
        mesh, a = sim_setup
        parts = np.zeros(mesh.n_elements, dtype=int)
        sim = ClusterSimulator(mesh, a, parts, 1, CPU_NODE)
        cost = sim.lts_cycle()
        assert cost.comm_time == 0.0
        assert cost.stall_time == 0.0

    def test_serial_lts_speedup_near_model(self, sim_setup):
        """On one rank, LTS/non-LTS wall ratio ~ Eq. (9) (cache aside)."""
        mesh, a = sim_setup
        parts = np.zeros(mesh.n_elements, dtype=int)
        machine = MachineModel(
            name="flat", ranks_per_node=8, elem_step_cost=1e-6,
            alpha=0.0, beta=0.0, cache_max_gain=0.0,
        )
        sim = ClusterSimulator(mesh, a, parts, 1, machine)
        ratio = sim.non_lts_cycle().cycle_time / sim.lts_cycle().cycle_time
        assert ratio == pytest.approx(theoretical_speedup(a), rel=1e-6)

    def test_imbalanced_partition_stalls(self, sim_setup):
        """Hoarding the fine strip on one rank creates stalls (Fig. 1)."""
        mesh, a = sim_setup
        half = (mesh.element_centroids()[:, 1] > 3).astype(int)
        sim = ClusterSimulator(mesh, a, half, 2, CPU_NODE)
        cost = sim.lts_cycle()
        assert cost.stall_time > 0.0

    def test_barrier_never_faster_than_neighbor(self, sim_setup):
        mesh, a = sim_setup
        parts = (np.arange(mesh.n_elements) % 4).astype(int)
        t_nb = ClusterSimulator(mesh, a, parts, 4, CPU_NODE, sync="neighbor").lts_cycle()
        t_ba = ClusterSimulator(mesh, a, parts, 4, CPU_NODE, sync="barrier").lts_cycle()
        assert t_ba.cycle_time >= t_nb.cycle_time - 1e-15

    def test_performance_is_dt_over_cycle(self, sim_setup):
        mesh, a = sim_setup
        parts = np.zeros(mesh.n_elements, dtype=int)
        sim = ClusterSimulator(mesh, a, parts, 1, CPU_NODE)
        c = sim.lts_cycle()
        assert c.performance == pytest.approx(a.dt / c.cycle_time)

    def test_simulate_scaling_helper(self, sim_setup):
        mesh, a = sim_setup
        from repro.partition import partition_scotch_p

        res = simulate_scaling(mesh, a, partition_scotch_p, [2, 4], scaled(CPU_NODE, 10))
        assert len(res) == 2
        assert res[1].non_lts_performance > res[0].non_lts_performance
        assert all(r.lts_speedup > 1.0 for r in res)


class TestTrace:
    def test_trace_events_cover_all_stages(self, sim_setup):
        mesh, a = sim_setup
        parts = (np.arange(mesh.n_elements) % 2).astype(int)
        sim = ClusterSimulator(mesh, a, parts, 2, CPU_NODE)
        tr = trace_cycle(sim)
        assert len(tr.events) == 2 * sim.schedule.n_stages
        assert tr.cycle_time == pytest.approx(sim.lts_cycle().cycle_time)

    def test_render_produces_rows_per_rank(self, sim_setup):
        mesh, a = sim_setup
        parts = (np.arange(mesh.n_elements) % 2).astype(int)
        sim = ClusterSimulator(mesh, a, parts, 2, CPU_NODE)
        out = render_timeline(trace_cycle(sim))
        assert out.count("rank") == 2
        assert "#" in out

    def test_stall_fraction_bounded(self, sim_setup):
        mesh, a = sim_setup
        half = (mesh.element_centroids()[:, 1] > 6).astype(int)
        sim = ClusterSimulator(mesh, a, half, 2, CPU_NODE)
        tr = trace_cycle(sim)
        for r in range(2):
            assert 0.0 <= tr.stall_fraction(r) <= 1.0
