"""Atomic .npz publication: complete file or nothing, never a partial."""

import json
import os

import numpy as np
import pytest

from repro.util.io import atomic_savez


class TestAtomicSavez:
    def test_roundtrip(self, tmp_path):
        path = atomic_savez(tmp_path / "out.npz", a=np.arange(3.0), b=np.eye(2))
        with np.load(path) as data:
            assert np.array_equal(data["a"], np.arange(3.0))
            assert np.array_equal(data["b"], np.eye(2))

    def test_appends_npz_suffix(self, tmp_path):
        path = atomic_savez(tmp_path / "out", a=np.zeros(1))
        assert path.name == "out.npz"
        assert path.exists()

    def test_creates_parent_dirs(self, tmp_path):
        path = atomic_savez(tmp_path / "deep" / "er" / "out.npz", a=np.zeros(1))
        assert path.exists()

    def test_overwrite_is_atomic(self, tmp_path):
        target = tmp_path / "out.npz"
        atomic_savez(target, a=np.zeros(4))
        atomic_savez(target, a=np.ones(4))
        with np.load(target) as data:
            assert np.array_equal(data["a"], np.ones(4))

    def test_failed_write_leaves_no_trace(self, tmp_path, monkeypatch):
        """A crash mid-serialization must not leave a partial target or a
        stray temp file — the kill-during-write guarantee."""

        def boom(*args, **kwargs):
            raise KeyboardInterrupt("killed mid-write")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(KeyboardInterrupt):
            atomic_savez(tmp_path / "out.npz", a=np.zeros(3))
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_keeps_previous_version(self, tmp_path, monkeypatch):
        target = atomic_savez(tmp_path / "out.npz", a=np.full(2, 7.0))
        real_savez = np.savez

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError):
            atomic_savez(target, a=np.zeros(2))
        monkeypatch.setattr(np, "savez", real_savez)
        with np.load(target) as data:
            assert np.array_equal(data["a"], np.full(2, 7.0))
        assert [p.name for p in tmp_path.iterdir()] == ["out.npz"]

    def test_temp_file_in_target_directory(self, tmp_path, monkeypatch):
        """The temp file must live next to the target (same filesystem),
        or os.replace would not be atomic."""
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["src_dir"] = os.path.dirname(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        atomic_savez(tmp_path / "out.npz", a=np.zeros(1))
        assert seen["src_dir"] == str(tmp_path)


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        from repro.util.io import atomic_write_json

        obj = {"id": "a1", "nested": {"x": [1, 2, 3]}, "none": None}
        path = atomic_write_json(tmp_path / "rec.json", obj)
        assert json.loads(path.read_text()) == obj
        assert path.read_text().endswith("\n")

    def test_overwrite_replaces_whole_file(self, tmp_path):
        from repro.util.io import atomic_write_json

        target = tmp_path / "rec.json"
        atomic_write_json(target, {"state": "queued", "big": "x" * 4096})
        atomic_write_json(target, {"state": "done"})
        assert json.loads(target.read_text()) == {"state": "done"}
        assert [p.name for p in tmp_path.iterdir()] == ["rec.json"]


class TestEnsureWritableDir:
    def test_creates_nested_directories(self, tmp_path):
        from repro.util.io import ensure_writable_dir

        target = tmp_path / "a" / "b" / "c"
        assert ensure_writable_dir(target) == target
        assert target.is_dir()
        assert list(target.iterdir()) == []  # the write probe is gone

    def test_existing_dir_is_fine(self, tmp_path):
        from repro.util.io import ensure_writable_dir

        assert ensure_writable_dir(tmp_path) == tmp_path

    def test_path_through_a_file_raises_config_error(self, tmp_path):
        from repro.util.errors import ConfigError
        from repro.util.io import ensure_writable_dir

        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigError, match="--output-dir .* not writable"):
            ensure_writable_dir(blocker / "sub", "--output-dir")
