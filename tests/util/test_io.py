"""Atomic .npz publication: complete file or nothing, never a partial."""

import os

import numpy as np
import pytest

from repro.util.io import atomic_savez


class TestAtomicSavez:
    def test_roundtrip(self, tmp_path):
        path = atomic_savez(tmp_path / "out.npz", a=np.arange(3.0), b=np.eye(2))
        with np.load(path) as data:
            assert np.array_equal(data["a"], np.arange(3.0))
            assert np.array_equal(data["b"], np.eye(2))

    def test_appends_npz_suffix(self, tmp_path):
        path = atomic_savez(tmp_path / "out", a=np.zeros(1))
        assert path.name == "out.npz"
        assert path.exists()

    def test_creates_parent_dirs(self, tmp_path):
        path = atomic_savez(tmp_path / "deep" / "er" / "out.npz", a=np.zeros(1))
        assert path.exists()

    def test_overwrite_is_atomic(self, tmp_path):
        target = tmp_path / "out.npz"
        atomic_savez(target, a=np.zeros(4))
        atomic_savez(target, a=np.ones(4))
        with np.load(target) as data:
            assert np.array_equal(data["a"], np.ones(4))

    def test_failed_write_leaves_no_trace(self, tmp_path, monkeypatch):
        """A crash mid-serialization must not leave a partial target or a
        stray temp file — the kill-during-write guarantee."""

        def boom(*args, **kwargs):
            raise KeyboardInterrupt("killed mid-write")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(KeyboardInterrupt):
            atomic_savez(tmp_path / "out.npz", a=np.zeros(3))
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_keeps_previous_version(self, tmp_path, monkeypatch):
        target = atomic_savez(tmp_path / "out.npz", a=np.full(2, 7.0))
        real_savez = np.savez

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError):
            atomic_savez(target, a=np.zeros(2))
        monkeypatch.setattr(np, "savez", real_savez)
        with np.load(target) as data:
            assert np.array_equal(data["a"], np.full(2, 7.0))
        assert [p.name for p in tmp_path.iterdir()] == ["out.npz"]

    def test_temp_file_in_target_directory(self, tmp_path, monkeypatch):
        """The temp file must live next to the target (same filesystem),
        or os.replace would not be atomic."""
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["src_dir"] = os.path.dirname(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        atomic_savez(tmp_path / "out.npz", a=np.zeros(1))
        assert seen["src_dir"] == str(tmp_path)
