"""Unit tests for the table renderer used by benchmark reports."""

import pytest

from repro.util import Table, format_si


class TestFormatSi:
    def test_zero(self):
        assert format_si(0) == "0"

    def test_magnitude(self):
        assert format_si(1.4e6) == "1.40e+06"

    def test_digits(self):
        assert format_si(1.4e6, digits=1) == "1.4e+06"


class TestTable:
    def test_renders_headers_and_rows(self):
        t = Table(["mesh", "#"], title="T")
        t.add_row(["trench", 42])
        out = t.render()
        assert "T" in out
        assert "mesh" in out and "trench" in out and "42" in out

    def test_alignment_pads_columns(self):
        t = Table(["a", "b"])
        t.add_row(["xxxxxx", 1])
        lines = t.render().splitlines()
        header, sep, row = lines
        assert len(header) == len(row)

    def test_row_length_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])
