"""Unit tests for repro.util.validation and errors."""

import numpy as np
import pytest

from repro.util import (
    MeshError,
    ReproError,
    check_array,
    check_positive,
    check_power_of_two,
    require,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ReproError, match="boom"):
            require(False, "boom")

    def test_custom_exception_class(self):
        with pytest.raises(MeshError):
            require(False, "mesh boom", MeshError)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, bad):
        with pytest.raises(ReproError):
            check_positive(bad, "x")

    def test_message_contains_name(self):
        with pytest.raises(ReproError, match="myparam"):
            check_positive(-3, "myparam")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 8, 1024])
    def test_accepts_powers(self, good):
        assert check_power_of_two(good, "p") == good

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 12])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ReproError):
            check_power_of_two(bad, "p")


class TestCheckArray:
    def test_coerces_list(self):
        out = check_array([1, 2, 3], "a", ndim=1)
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ReproError, match="ndim"):
            check_array([[1, 2]], "a", ndim=1)

    def test_rejects_wrong_size(self):
        with pytest.raises(ReproError, match="size"):
            check_array([1, 2], "a", ndim=1, size=3)

    def test_dtype_conversion(self):
        out = check_array([1, 2], "a", dtype=np.float64)
        assert out.dtype == np.float64
