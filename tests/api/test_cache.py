"""StageCache unit behavior: LRU bounds, exactly-once builds under
threads, disk persistence, key-mismatch/corruption rejection — plus the
content-key layer (stage_key / per-spec sub-hashes) it is addressed by."""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.api import (
    BackendSpec,
    SimulationConfig,
    StageCache,
    Simulation,
    compare_backends,
    stage_key,
)
from repro.util.errors import ConfigError


def make_config(**overrides) -> SimulationConfig:
    base = dict(
        mesh={"family": "uniform_grid", "params": {"shape": [5, 5]}},
        material={
            "model": "acoustic",
            "regions": [{"elements": [12], "values": {"c": 3.0}}],
        },
        order=3,
        time={"n_cycles": 4, "c_cfl": 0.35},
        source={"position": [1.0, 2.0], "f0": 0.8},
    )
    base.update(overrides)
    return SimulationConfig.from_dict(base)


class TestGetOrCreate:
    def test_memory_hit_and_events(self):
        cache = StageCache()
        calls = []
        events: dict = {}
        build = lambda: calls.append(1) or np.arange(4.0)
        a = cache.get_or_create("k:1", build, stage="mesh", events=events)
        b = cache.get_or_create("k:1", build, stage="mesh", events=events)
        assert a is b and len(calls) == 1
        assert events == {"misses": 1, "hits": 1}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.resolutions == {"mesh": 1}
        assert "k:1" in cache and len(cache) == 1

    def test_build_exactly_once_under_racing_threads(self):
        cache = StageCache()
        builds = []

        def build():
            builds.append(1)
            return np.zeros(8)

        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_create("k:race", build))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert all(r is results[0] for r in results)

    def test_pack_without_unpack_rejected(self):
        cache = StageCache()
        with pytest.raises(ConfigError, match="pack= and unpack="):
            cache.get_or_create("k:1", lambda: 1, pack=lambda o: {})

    def test_invalid_caps_rejected(self):
        with pytest.raises(ConfigError, match="max_entries"):
            StageCache(max_entries=0)
        with pytest.raises(ConfigError, match="max_bytes"):
            StageCache(max_bytes=0)

    def test_clear_drops_memory(self):
        cache = StageCache()
        cache.get_or_create("k:1", lambda: np.zeros(4))
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


class TestLRU:
    def test_entry_cap_evicts_least_recently_used(self):
        cache = StageCache(max_entries=2)
        cache.get_or_create("k:a", lambda: np.zeros(2))
        cache.get_or_create("k:b", lambda: np.zeros(2))
        cache.get_or_create("k:a", lambda: np.zeros(2))  # a now most recent
        cache.get_or_create("k:c", lambda: np.zeros(2))  # evicts b
        assert "k:a" in cache and "k:c" in cache and "k:b" not in cache
        assert cache.stats.evictions == 1
        # b rebuilds on next access
        cache.get_or_create("k:b", lambda: np.zeros(2))
        assert cache.stats.misses == 4

    def test_byte_cap_evicts_under_memory_pressure(self):
        one_kb = 1024
        cache = StageCache(max_bytes=3 * one_kb)
        for name in ("a", "b", "c", "d"):
            cache.get_or_create(f"k:{name}", lambda: np.zeros(one_kb // 8))
        assert cache.stats.evictions >= 1
        assert cache.nbytes <= 3 * one_kb
        assert "k:d" in cache  # newest always survives

    def test_oversized_entry_still_caches(self):
        cache = StageCache(max_bytes=64)
        big = cache.get_or_create("k:big", lambda: np.zeros(1024))
        assert "k:big" in cache
        assert cache.get_or_create("k:big", lambda: np.zeros(1024)) is big


class TestDiskLayer:
    CODEC = dict(
        pack=lambda a: {"a": a},
        unpack=lambda d: d["a"],
    )

    def test_persist_and_warm_start(self, tmp_path):
        cold = StageCache(cache_dir=tmp_path)
        a = cold.get_or_create("mesh:abc", lambda: np.arange(6.0), **self.CODEC)
        assert cold.stats.disk_writes == 1
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1 and files[0].name == "mesh-abc.npz"

        warm = StageCache(cache_dir=tmp_path)
        b = warm.get_or_create(
            "mesh:abc", lambda: pytest.fail("must not rebuild"), **self.CODEC
        )
        assert np.array_equal(a, b)
        assert warm.stats.disk_hits == 1 and warm.stats.resolutions == {}

    def test_no_codec_means_memory_only(self, tmp_path):
        cache = StageCache(cache_dir=tmp_path)
        cache.get_or_create("mesh:abc", lambda: object())
        assert list(tmp_path.glob("*.npz")) == []

    def test_corrupted_file_is_rejected_and_recomputed(self, tmp_path):
        cold = StageCache(cache_dir=tmp_path)
        cold.get_or_create("mesh:abc", lambda: np.arange(6.0), **self.CODEC)
        path = next(tmp_path.glob("*.npz"))
        path.write_bytes(b"not a zip archive")

        warm = StageCache(cache_dir=tmp_path)
        rebuilt = warm.get_or_create(
            "mesh:abc", lambda: np.arange(6.0), **self.CODEC
        )
        assert np.array_equal(rebuilt, np.arange(6.0))
        assert warm.stats.disk_rejects == 1
        # The bad file was replaced by a healthy rewrite.
        assert warm.stats.disk_writes == 1
        third = StageCache(cache_dir=tmp_path)
        third.get_or_create(
            "mesh:abc", lambda: pytest.fail("must not rebuild"), **self.CODEC
        )
        assert third.stats.disk_hits == 1

    def test_key_mismatch_is_rejected(self, tmp_path):
        cache = StageCache(cache_dir=tmp_path)
        cache.get_or_create("mesh:abc", lambda: np.arange(6.0), **self.CODEC)
        path = next(tmp_path.glob("*.npz"))
        # Masquerade the file as a different key: must not be trusted.
        path.rename(tmp_path / "mesh-def.npz")
        other = StageCache(cache_dir=tmp_path)
        out = other.get_or_create("mesh:def", lambda: np.zeros(3), **self.CODEC)
        assert np.array_equal(out, np.zeros(3))
        assert other.stats.disk_rejects == 1

    def test_non_array_pack_rejected(self, tmp_path):
        cache = StageCache(cache_dir=tmp_path)
        with pytest.raises(ConfigError, match="ndarray"):
            cache.get_or_create(
                "mesh:abc",
                lambda: 7,
                pack=lambda o: {"x": o},
                unpack=lambda d: d["x"],
            )


class TestStageKeys:
    def test_backend_and_name_never_invalidate(self):
        a = make_config()
        b = make_config(
            name="other", backend={"stiffness": "matfree", "threads": 2}
        )
        for stage in ("mesh", "material", "assembler", "levels", "parts"):
            assert stage_key(stage, a) == stage_key(stage, b)

    def test_source_move_only_invalidates_force(self):
        a = make_config()
        b = make_config(source={"position": [2.0, 3.0], "f0": 0.8})
        assert stage_key("assembler", a) == stage_key("assembler", b)
        assert stage_key("parts", a) == stage_key("parts", b)
        assert stage_key("force", a) != stage_key("force", b)

    def test_material_change_invalidates_downstream(self):
        a = make_config()
        b = make_config(material={"model": "acoustic"})
        assert stage_key("mesh", a) == stage_key("mesh", b)
        for stage in ("material", "assembler", "levels", "parts"):
            assert stage_key(stage, a) != stage_key(stage, b)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigError, match="unknown pipeline stage"):
            stage_key("solver", make_config())


class TestSimulationThroughCache:
    def test_two_simulations_share_resolved_stages(self):
        cache = StageCache()
        a = Simulation(make_config(), cache=cache)
        b = Simulation(
            make_config(source={"position": [2.0, 3.0], "f0": 0.8}),
            cache=cache,
        )
        assert a.assembler is b.assembler
        assert a.levels is b.levels
        assert cache.stats.resolutions["assembler"] == 1
        assert b.cache_summary()["hits"] >= 2

    def test_results_match_uncached(self):
        cache = StageCache()
        cfg = make_config()
        cached = Simulation(cfg, cache=cache).run()
        plain = Simulation(cfg).run()
        assert np.array_equal(cached.u, plain.u)
        assert np.array_equal(cached.traces, plain.traces)

    def test_assembler_disk_roundtrip_is_exact(self, tmp_path):
        cfg = make_config()
        cold = Simulation(cfg, cache=StageCache(cache_dir=tmp_path))
        cold.assembler  # resolve + persist
        warm = Simulation(cfg, cache=StageCache(cache_dir=tmp_path))
        warm.assembler
        assert warm.cache.stats.disk_hits >= 1
        assert (cold.assembler.A - warm.assembler.A).nnz == 0
        assert (cold.assembler.K - warm.assembler.K).nnz == 0
        assert np.array_equal(cold.run().u, warm.run().u)

    def test_disk_key_change_recomputes(self, tmp_path):
        Simulation(make_config(), cache=StageCache(cache_dir=tmp_path)).assembler
        other = Simulation(
            make_config(order=4), cache=StageCache(cache_dir=tmp_path)
        )
        other.assembler
        # Different sub-hash -> different file; no stale artifact reused.
        assert other.cache.stats.disk_hits == 0
        assert other.cache.stats.resolutions["assembler"] == 1
        assert len(list(tmp_path.glob("assembler-*.npz"))) == 2

    def test_compare_backends_resolves_assembler_once(self):
        cache = StageCache()
        results = compare_backends(make_config(), cache=cache)
        assert cache.stats.resolutions["assembler"] == 1
        assert cache.stats.resolutions["levels"] == 1
        assert np.array_equal(
            results["assembled"].times, results["matfree"].times
        )

    def test_matfree_simulation_never_assembles(self):
        sim = Simulation(
            make_config(backend={"stiffness": "matfree"}), cache=StageCache()
        )
        sim.run()
        assert not sim.assembler.assembled

    def test_variant_backend_swap_keeps_lazy_csr_shared(self):
        sim = Simulation(make_config(), cache=StageCache())
        sim.run()
        var = sim.variant(backend=BackendSpec(stiffness="matfree"))
        assert var.assembler is sim.assembler
        var.run()


def _race_for_stage(cache_dir, barrier, out):
    """Child-process body for the cross-process disk-layer race: one
    private StageCache per process, same cache_dir, same key."""
    builds = []

    def build():
        builds.append(1)
        time.sleep(0.05)  # widen the race window past the build start
        return {"data": np.arange(64.0)}

    cache = StageCache(cache_dir=cache_dir)
    barrier.wait()  # both processes hit get_or_create together
    value = cache.get_or_create(
        "stage:racetest",
        build,
        stage="race",
        pack=lambda v: {"data": v["data"]},
        unpack=lambda d: {"data": d["data"]},
    )
    out.put({
        "correct": bool(np.array_equal(value["data"], np.arange(64.0))),
        "builds": len(builds),
        "stats": cache.stats.as_dict(),
    })


class TestCrossProcessDiskSharing:
    def test_two_processes_racing_get_or_create(self, tmp_path):
        """Two *processes* race the same key through the disk layer:
        both must succeed (atomic_savez means no torn reads), each
        builds at most once, and nothing is ever rejected as corrupt —
        the contract the service's process workers and multi-server
        cache_dir sharing rest on."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_race_for_stage, args=(tmp_path, barrier, out))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        results = [out.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        assert all(r["correct"] for r in results)
        # Per-process build locks can't span processes, so both MAY
        # build — but never twice, and never read garbage.
        assert all(r["builds"] <= 1 for r in results)
        assert sum(r["builds"] for r in results) >= 1
        assert all(r["stats"]["disk_rejects"] == 0 for r in results)

        # The survivor on disk is a valid artifact: a third, fresh
        # cache warm-starts from it without building at all.
        events: dict = {}
        fresh = StageCache(cache_dir=tmp_path)
        value = fresh.get_or_create(
            "stage:racetest",
            lambda: (_ for _ in ()).throw(AssertionError("rebuilt!")),
            stage="race",
            pack=lambda v: {"data": v["data"]},
            unpack=lambda d: {"data": d["data"]},
            events=events,
        )
        assert np.array_equal(value["data"], np.arange(64.0))
        assert fresh.stats.disk_hits == 1
        assert events == {"misses": 1}
