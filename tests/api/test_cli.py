"""CLI tests: ``python -m repro run`` must reproduce the façade (and
therefore ``examples/quickstart.py``) receiver traces on both backends,
and fail cleanly on bad configs."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import SimulationConfig, run

REPO = Path(__file__).resolve().parents[2]
QUICKSTART = REPO / "examples" / "configs" / "quickstart.json"
HEX_TRENCH = REPO / "examples" / "configs" / "hex_trench_3d.json"


def _repro(*args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    if check:
        assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc


@pytest.fixture(scope="module")
def quickstart_reference():
    """The façade's own quickstart traces (what examples/quickstart.py
    records), computed once per backend."""
    cfg = SimulationConfig.from_file(QUICKSTART)
    return cfg, run(cfg)


class TestRunParity:
    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_cli_reproduces_quickstart_traces(self, tmp_path, backend,
                                              quickstart_reference):
        _, ref = quickstart_reference
        out = tmp_path / f"{backend}.npz"
        proc = _repro(
            "run", str(QUICKSTART), "--backend", backend, "--output", str(out)
        )
        assert "LTS levels" in proc.stdout
        data = np.load(out)
        assert data["traces"].shape == ref.traces.shape
        peak = np.abs(ref.traces).max()
        assert peak > 0
        # Acceptance bar: the CLI run reproduces the quickstart traces
        # to <= 1e-12 (exactly, for the backend the reference used).
        dev = np.abs(data["traces"] - ref.traces).max() / peak
        assert dev <= 1e-12
        if backend == "assembled":
            assert np.array_equal(data["traces"], ref.traces)
        assert np.array_equal(data["times"], ref.times)
        assert np.array_equal(data["receiver_dofs"], ref.receiver_dofs)

    def test_saved_config_round_trips(self, tmp_path, quickstart_reference):
        cfg, _ = quickstart_reference
        out = tmp_path / "out.npz"
        _repro("run", str(QUICKSTART), "--output", str(out))
        stored = json.loads(str(np.load(out)["config_json"]))
        assert SimulationConfig.from_dict(stored) == cfg

    def test_override_flags(self, tmp_path):
        out = tmp_path / "o.npz"
        proc = _repro(
            "run", str(QUICKSTART), "--scheme", "newmark", "--backend",
            "matfree", "--output", str(out),
        )
        assert "scheme=newmark" in proc.stdout
        assert "backend=matfree" in proc.stdout


class TestValidateAndErrors:
    def test_validate_ok(self):
        proc = _repro("validate", str(QUICKSTART), "--print")
        assert "OK" in proc.stdout
        assert json.loads(proc.stdout.split("\n", 1)[1])["name"] == "quickstart"

    def test_validate_hex_trench_config(self):
        proc = _repro("validate", str(HEX_TRENCH))
        assert "OK" in proc.stdout

    def test_unknown_key_fails_with_actionable_message(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"mesg": {"family": "trench"},
                                   "time": {"n_cycles": 1}}))
        proc = _repro("run", str(bad), check=False)
        assert proc.returncode == 2
        assert "unknown key 'mesg'" in proc.stderr
        assert "did you mean 'mesh'" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_missing_file_fails_cleanly(self, tmp_path):
        proc = _repro("run", str(tmp_path / "nope.json"), check=False)
        assert proc.returncode == 2
        assert "not found" in proc.stderr


class TestEnsembleOutputDir:
    """``ensemble --output-dir`` must create missing directories and
    reject unwritable ones up front with a clean exit 2."""

    def _tiny_ensemble(self, tmp_path) -> Path:
        spec = {
            "name": "cli-ens",
            "mode": "zip",
            "base": {
                "mesh": {"family": "uniform_grid", "params": {"shape": [5, 5]}},
                "time": {"n_cycles": 2},
                "source": {"position": [1.0, 2.0], "f0": 0.8},
                "receivers": {"positions": [[3.0, 2.0]]},
                "backend": {"stiffness": "matfree"},
            },
            "sweeps": [
                {"path": "source.position",
                 "values": [[1.0, 2.0], [2.0, 2.0]]}
            ],
        }
        path = tmp_path / "ens.json"
        path.write_text(json.dumps(spec))
        return path

    def test_missing_output_dir_is_created(self, tmp_path):
        spec = self._tiny_ensemble(tmp_path)
        out_dir = tmp_path / "deep" / "ly" / "nested"
        _repro("ensemble", str(spec), "--output-dir", str(out_dir))
        members = sorted(p.name for p in out_dir.glob("member_*.npz"))
        assert len(members) == 2

    def test_unwritable_output_dir_exits_2_before_running(self, tmp_path):
        spec = self._tiny_ensemble(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        proc = _repro(
            "ensemble", str(spec),
            "--output-dir", str(blocker / "sub"),
            check=False,
        )
        assert proc.returncode == 2
        assert "--output-dir" in proc.stderr
        assert "not writable" in proc.stderr
        assert proc.stdout == ""  # rejected before any member ran
