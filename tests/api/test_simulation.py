"""Simulation-driver tests: resolved pipeline stages, scheme semantics,
and serial-vs-distributed SimulationResult agreement (2D and 3D)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.api import (
    BackendSpec,
    PartitionSpec,
    Simulation,
    SimulationConfig,
    compare_backends,
    relative_deviation,
    run,
)
from repro.sem import ElasticSem3D, Sem1D, Sem2D, Sem3D
from repro.util.errors import ConfigError


def config_2d(**overrides) -> SimulationConfig:
    base = dict(
        name="2d-case",
        mesh={"family": "uniform_grid", "params": {"shape": [6, 6]}},
        material={
            "model": "acoustic",
            "regions": [{"elements": [14, 15], "values": {"c": 4.0}}],
        },
        order=3,
        time={"n_cycles": 12, "c_cfl": 0.35},
        source={"position": [1.0, 3.0], "f0": 0.8},
        receivers={"positions": [[4.0, 3.0], [5.0, 3.0]]},
    )
    base.update(overrides)
    return SimulationConfig.from_dict(base)


def config_3d(**overrides) -> SimulationConfig:
    base = dict(
        name="3d-case",
        mesh={
            "family": "trench",
            "params": {"nx": 6, "ny": 4, "nz": 2, "band_radii": [0.8]},
        },
        material={"model": "elastic", "lam": 2.0, "mu": 1.0},
        order=2,
        time={"n_cycles": 6, "c_cfl": 0.35},
        source={"position": [1.0, 2.0, 0.5], "component": 2, "f0": 0.5},
        receivers={"positions": [[4.0, 2.0, 0.5]], "component": 2},
    )
    base.update(overrides)
    return SimulationConfig.from_dict(base)


class TestPipelineStages:
    def test_assembler_dispatch(self):
        assert isinstance(Simulation(config_2d()).assembler, Sem2D)
        assert isinstance(Simulation(config_3d()).assembler, ElasticSem3D)
        cfg1 = SimulationConfig.from_dict(
            {
                "mesh": {"family": "refined_interval",
                         "params": {"n_coarse": 8, "n_fine": 4}},
                "time": {"n_cycles": 2},
            }
        )
        assert isinstance(Simulation(cfg1).assembler, Sem1D)
        cfg3a = config_3d(material={"model": "acoustic"}, source=None, receivers=None)
        assert isinstance(Simulation(cfg3a).assembler, Sem3D)

    def test_elastic_on_1d_mesh_rejected(self):
        cfg = SimulationConfig.from_dict(
            {
                "mesh": {"family": "uniform_interval", "params": {"n_elements": 4}},
                "material": {"model": "elastic"},
                "time": {"n_cycles": 1},
            }
        )
        with pytest.raises(ConfigError, match="elastic materials need a 2D or 3D"):
            Simulation(cfg).assembler

    def test_levels_follow_material_velocity(self):
        """The fast inclusion, not mesh geometry, creates the levels."""
        sim = Simulation(config_2d())
        assert sim.levels.n_levels >= 2
        lvl = sim.levels.level
        assert lvl[14] == sim.levels.n_levels  # fast element = finest level
        no_region = Simulation(config_2d(material={"model": "acoustic"}))
        assert no_region.levels.n_levels == 1

    def test_component_validation(self):
        with pytest.raises(ConfigError, match="scalar physics"):
            Simulation(config_2d(source={"position": [1.0, 3.0], "component": 1})).force
        with pytest.raises(ConfigError, match="out of range"):
            Simulation(
                config_3d(source={"position": [1.0, 2.0, 0.5], "component": 3})
            ).force

    def test_position_dimension_validation(self):
        with pytest.raises(ConfigError, match="2 coordinates but the mesh is 3D"):
            Simulation(config_3d(source={"position": [1.0, 2.0]})).force

    def test_t_end_mode_lands_exactly(self):
        cfg = config_2d(time={"t_end": 1.0, "c_cfl": 0.35})
        sim = Simulation(cfg)
        assert sim.n_cycles * sim.dt == pytest.approx(1.0, abs=1e-15)
        assert sim.dt <= sim.levels.dt + 1e-15

    def test_newmark_scheme_is_single_level_at_fine_step(self):
        sim = Simulation(config_2d(time={"n_cycles": 3, "c_cfl": 0.35,
                                         "scheme": "newmark"}))
        assert np.all(sim.dof_level == 1)
        assert sim.dt == sim.levels.dt_min

    def test_schemes_cover_the_same_physical_duration(self):
        """n_cycles counts coarse-cycle spans under both schemes: the
        newmark baseline takes p_max fine steps per cycle."""
        lts = Simulation(config_2d())
        nm = Simulation(config_2d(time={"n_cycles": 12, "c_cfl": 0.35,
                                        "scheme": "newmark"}))
        assert lts.levels.p_max > 1
        assert nm.n_cycles == 12 * lts.levels.p_max
        assert nm.n_cycles * nm.dt == pytest.approx(lts.n_cycles * lts.dt)

    def test_result_fields_and_metadata(self):
        res = Simulation(config_2d()).run()
        assert res.traces.shape == (12, 2)
        assert res.times.shape == (12,)
        assert res.times[-1] == pytest.approx(12 * res.dt)
        assert res.u.shape == res.v.shape
        assert res.parts is None
        md = res.metadata
        assert md["scheme"] == "lts" and md["n_ranks"] == 1
        assert md["n_dof"] == Simulation(config_2d()).assembler.n_dof

    def test_perf_metadata_opt_in(self):
        plain = Simulation(config_2d()).run()
        assert "perf" not in plain.metadata
        res = Simulation(config_2d()).run(perf=True)
        perf = res.metadata["perf"]
        assert perf["steps_per_second"] > 0
        assert perf["steps_traced"] >= 1
        assert perf["workspace_bytes"] > 0
        assert perf["allocs_per_step"] <= 16
        # Tracing must not perturb the results.
        assert np.array_equal(res.u, plain.u)
        assert np.array_equal(res.traces, plain.traces)

    def test_perf_metadata_distributed(self):
        cfg = config_2d(partition={"n_ranks": 3})
        res = Simulation(cfg).run(perf=True)
        perf = res.metadata["perf"]
        assert perf["steps_per_second"] > 0
        assert perf["steps_traced"] >= 1


class TestSerialDistributedAgreement:
    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_2d_acoustic(self, backend):
        cfg = config_2d(backend={"stiffness": backend})
        serial = run(cfg)
        dist = run(replace(cfg, partition=PartitionSpec(n_ranks=4)))
        assert dist.parts is not None and len(dist.parts) == 36
        assert "messages" in dist.metadata
        assert relative_deviation(serial, dist) < 1e-11
        assert np.abs(serial.v - dist.v).max() <= 1e-11 * max(
            np.abs(serial.v).max(), 1.0
        )
        assert np.abs(serial.traces).max() > 0

    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_3d_elastic(self, backend):
        cfg = config_3d(backend={"stiffness": backend})
        serial = run(cfg)
        dist = run(replace(cfg, partition=PartitionSpec(n_ranks=3)))
        assert relative_deviation(serial, dist) < 1e-11
        assert np.abs(serial.traces).max() > 0

    def test_backend_agreement_helper(self):
        results = compare_backends(config_2d())
        assert set(results) == {"assembled", "matfree"}
        assert relative_deviation(results["assembled"], results["matfree"]) < 1e-12

    def test_compare_backends_includes_serial_and_shares_stages(self):
        cfg = config_2d(partition={"n_ranks": 3})
        sim = Simulation(cfg)
        results = compare_backends(sim, include_serial=True)
        assert set(results) == {"serial", "assembled", "matfree"}
        assert results["serial"].parts is None
        assert results["assembled"].parts is not None
        assert relative_deviation(results["serial"], results["matfree"]) < 1e-11
        # The expensive stages were resolved once, on the base Simulation.
        assert "assembler" in sim.__dict__

    def test_compare_backends_keeps_fused_choice(self):
        cfg = config_2d(backend={"stiffness": "matfree", "fused": False})
        results = compare_backends(cfg)
        assert results["matfree"].config.backend.fused is False
        assert results["assembled"].config.backend.fused is None

    def test_variant_shares_resolved_stages(self):
        sim = Simulation(config_2d())
        sim.run()
        var = sim.variant(backend=BackendSpec(stiffness="matfree"))
        assert var.assembler is sim.assembler  # no re-assembly
        assert var.levels is sim.levels
        assert var.config.backend.stiffness == "matfree"
        # An identical partition spec shares the resolved parts ...
        same = sim.variant(partition=PartitionSpec(n_ranks=1))
        assert same.assembler is sim.assembler
        assert "parts" in same.__dict__ and same.parts is None
        # ... while an actually different one re-derives them (only).
        dist = sim.variant(partition=PartitionSpec(n_ranks=3))
        assert dist.assembler is sim.assembler
        assert "parts" not in dist.__dict__
        assert dist.parts is not None and len(dist.parts) == 36

    def test_distributed_newmark_scheme(self):
        cfg = config_2d(time={"n_cycles": 3, "c_cfl": 0.35, "scheme": "newmark"})
        serial = run(cfg)
        dist = run(replace(cfg, partition=PartitionSpec(n_ranks=2)))
        assert relative_deviation(serial, dist) < 1e-12


class TestFacadeMatchesManualWiring:
    def test_serial_run_equals_hand_wired_solver(self):
        """The façade adds nothing to the numerics: a hand-wired
        LTSNewmarkSolver from the same resolved stages is bit-identical."""
        from repro.core.lts_newmark import LTSNewmarkSolver

        cfg = config_2d()
        sim = Simulation(cfg)
        res = sim.run()
        solver = LTSNewmarkSolver(
            sim.assembler.A, sim.dof_level, sim.dt, force=sim.force
        )
        u = np.zeros(sim.assembler.n_dof)
        v = np.zeros(sim.assembler.n_dof)
        for _ in range(sim.n_cycles):
            u, v = solver.step(u, v)
        assert np.array_equal(res.u, u)
        assert np.array_equal(res.v, v)

    def test_1d_acoustic_runs_end_to_end(self):
        cfg = SimulationConfig.from_dict(
            {
                "mesh": {
                    "family": "refined_interval",
                    "params": {"n_coarse": 16, "n_fine": 8, "refinement": 4,
                               "coarse_h": 0.125},
                },
                "order": 4,
                "dirichlet": True,
                "time": {"n_cycles": 10, "c_cfl": 0.4},
                "source": {"position": [0.5], "f0": 2.0},
                "receivers": {"positions": [[1.0]]},
            }
        )
        res = run(cfg)
        assert res.levels.n_levels == 3
        assert np.all(np.isfinite(res.u))

    def test_1d_rejects_non_unit_density(self):
        cfg = SimulationConfig.from_dict(
            {
                "mesh": {"family": "uniform_interval", "params": {"n_elements": 4}},
                "material": {"model": "acoustic", "rho": 2.0},
                "time": {"n_cycles": 1},
            }
        )
        with pytest.raises(ConfigError, match="unit density"):
            Simulation(cfg).assembler
