"""Façade-level resilience: the acceptance tests of the fault-tolerant layer.

Kill-and-resume determinism (bitwise serial, <= 1e-12 distributed),
supervised recovery from planned faults matching the fault-free
reference, silent-corruption detection by the health guard, and the CLI
``--resume`` / atomic ``--output`` paths.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.api import (
    ResilienceSpec,
    Simulation,
    SimulationConfig,
    relative_deviation,
)
from repro.runtime import load_checkpoint
from repro.util.errors import ConfigError, SolverError

REPO = Path(__file__).resolve().parents[2]

BASE = {
    "mesh": {
        "family": "refined_interval",
        "params": {"n_coarse": 16, "n_fine": 8, "refinement": 4},
    },
    "time": {"n_cycles": 10},
    "source": {"position": [0.3], "f0": 4.0},
    "receivers": {"positions": [[0.7]]},
}


def config(**extra) -> SimulationConfig:
    return SimulationConfig.from_dict({**BASE, **extra})


@pytest.fixture(scope="module")
def serial_reference():
    return Simulation(config()).run()


@pytest.fixture(scope="module")
def distributed_reference():
    return Simulation(config(partition={"n_ranks": 3})).run()


class TestResilienceSpec:
    def test_defaults_are_disabled(self):
        spec = ResilienceSpec()
        assert not spec.enabled
        assert spec.fault_plan() is None
        assert config().resilience == spec

    def test_round_trip(self):
        cfg = config(
            resilience={
                "checkpoint_every": 2,
                "checkpoint_dir": "/tmp/ck",
                "max_restarts": 3,
                "health_check_every": 1,
                "faults": [{"kind": "crash", "rank": 1, "superstep": 4}],
            },
            partition={"n_ranks": 2},
        )
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.resilience.enabled
        assert len(cfg.resilience.fault_plan().events) == 1

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            config(resilience={"checkpoint_every": 2})

    def test_energy_factor_requires_health_cadence(self):
        with pytest.raises(ConfigError, match="health_check_every"):
            config(resilience={"energy_factor": 10.0})

    def test_faults_need_multiple_ranks(self):
        with pytest.raises(ConfigError, match="n_ranks"):
            config(
                resilience={"faults": [{"kind": "crash", "rank": 0}]}
            )

    def test_bad_fault_event_is_config_error(self):
        with pytest.raises(ConfigError, match="fault event"):
            config(
                partition={"n_ranks": 2},
                resilience={"faults": [{"kind": "gremlin"}]},
            )

    def test_content_hash_ignores_resilience_and_name(self):
        plain = config()
        tweaked = config(
            name="other",
            resilience={"checkpoint_every": 2, "checkpoint_dir": "x"},
        )
        assert plain.content_hash() == tweaked.content_hash()
        assert plain.content_hash() != config(time={"n_cycles": 11}).content_hash()


class TestKillAndResume:
    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_serial_resume_is_bitwise(self, tmp_path, backend, serial_reference):
        cfg = config(
            backend={"stiffness": backend},
            resilience={
                "checkpoint_every": 3,
                "checkpoint_dir": str(tmp_path),
            },
        )
        full = Simulation(cfg).run()
        # "kill" after cycle 6: only the checkpoint file survives
        ckpt = tmp_path / "ckpt_00000006.npz"
        assert ckpt.exists()
        resumed = Simulation(cfg).run(resume=ckpt)
        assert np.array_equal(resumed.u, full.u)
        assert np.array_equal(resumed.v, full.v)
        assert np.array_equal(resumed.traces, full.traces)
        assert resumed.metadata["resilience"]["resumed_from_cycle"] == 6
        if backend == "assembled":
            assert np.array_equal(full.u, serial_reference.u)
        else:
            assert relative_deviation(serial_reference, full) <= 1e-12

    def test_distributed_resume_is_bitwise(self, tmp_path, distributed_reference):
        cfg = config(
            partition={"n_ranks": 3},
            resilience={
                "checkpoint_every": 4,
                "checkpoint_dir": str(tmp_path),
            },
        )
        full = Simulation(cfg).run()
        assert np.array_equal(full.u, distributed_reference.u)
        resumed = Simulation(cfg).run(resume=tmp_path / "ckpt_00000004.npz")
        assert np.array_equal(resumed.u, full.u)
        assert np.array_equal(resumed.traces, full.traces)
        # and against the serial scheme the usual round-off bar holds
        assert relative_deviation(distributed_reference, resumed) == 0.0

    def test_resume_skips_completed_work(self, tmp_path):
        cfg = config(
            resilience={"checkpoint_every": 5, "checkpoint_dir": str(tmp_path)}
        )
        full = Simulation(cfg).run()
        final = tmp_path / "ckpt_00000010.npz"
        done = Simulation(cfg).run(resume=final)
        assert np.array_equal(done.u, full.u)
        assert np.array_equal(done.traces, full.traces)

    def test_checkpoint_stores_traces_so_far(self, tmp_path):
        cfg = config(
            resilience={"checkpoint_every": 3, "checkpoint_dir": str(tmp_path)}
        )
        full = Simulation(cfg).run()
        state = load_checkpoint(tmp_path / "ckpt_00000006.npz")
        assert state.traces.shape == (6, 1)
        assert np.array_equal(state.traces, full.traces[:6])

    def test_keep_checkpoints_prunes(self, tmp_path):
        cfg = config(
            resilience={
                "checkpoint_every": 2,
                "checkpoint_dir": str(tmp_path),
                "keep_checkpoints": 2,
            }
        )
        Simulation(cfg).run()
        names = sorted(p.name for p in tmp_path.glob("ckpt_*.npz"))
        assert names == ["ckpt_00000008.npz", "ckpt_00000010.npz"]

    def test_config_hash_mismatch_refused(self, tmp_path):
        cfg = config(
            resilience={"checkpoint_every": 5, "checkpoint_dir": str(tmp_path)}
        )
        Simulation(cfg).run()
        other = config(time={"n_cycles": 12}, source={"position": [0.4], "f0": 3.0})
        with pytest.raises(ConfigError, match="different configuration"):
            Simulation(other).run(resume=tmp_path / "ckpt_00000005.npz")

    def test_backend_change_does_not_refuse_resume(self, tmp_path):
        """Regression: the backend section is an execution plan, not
        physics — a checkpoint written under ``threads=None`` must
        resume under ``threads=2`` (or the other backend) instead of
        being rejected by the config-hash check."""
        cfg = config(
            backend={"stiffness": "matfree"},  # threads=None
            resilience={"checkpoint_every": 5, "checkpoint_dir": str(tmp_path)},
        )
        full = Simulation(cfg).run()
        ckpt = tmp_path / "ckpt_00000005.npz"
        threaded = config(
            backend={"stiffness": "matfree", "threads": 2},
            resilience={"checkpoint_every": 5, "checkpoint_dir": str(tmp_path)},
        )
        resumed = Simulation(threaded).run(resume=ckpt)
        assert resumed.metadata["resilience"]["resumed_from_cycle"] == 5
        assert relative_deviation(full, resumed) <= 1e-12
        # ... and across backends too (assembled leg of the same physics).
        other_backend = config(
            backend={"stiffness": "assembled"},
            resilience={"checkpoint_every": 5, "checkpoint_dir": str(tmp_path)},
        )
        crossed = Simulation(other_backend).run(resume=ckpt)
        assert relative_deviation(full, crossed) <= 1e-12

    def test_rank_count_mismatch_refused(self, tmp_path):
        cfg = config(
            partition={"n_ranks": 3},
            resilience={"checkpoint_every": 5, "checkpoint_dir": str(tmp_path)},
        )
        Simulation(cfg).run()
        ckpt = tmp_path / "ckpt_00000005.npz"
        with pytest.raises(ConfigError, match="rank"):
            Simulation(config(partition={"n_ranks": 2})).run(resume=ckpt)


class TestSupervisedRecovery:
    def test_crash_recovery_matches_fault_free(self, tmp_path, distributed_reference):
        """The paper-scale story in miniature: rank 1 dies mid-run, the
        supervisor restores the last checkpoint and the final answer is
        identical to the run where nothing went wrong."""
        cfg = config(
            partition={"n_ranks": 3},
            resilience={
                "checkpoint_every": 3,
                "checkpoint_dir": str(tmp_path),
                "max_restarts": 1,
                "faults": [{"kind": "crash", "rank": 1, "superstep": 7}],
            },
        )
        result = Simulation(cfg).run()
        assert np.array_equal(result.u, distributed_reference.u)
        assert np.array_equal(result.traces, distributed_reference.traces)
        rmd = result.metadata["resilience"]
        assert rmd["attempts"] == 2
        assert rmd["recovery"][0]["error"] == "RankFailure"
        assert rmd["faults_injected"][0]["kind"] == "crash"

    def test_crash_without_checkpoints_restarts_cold(self, distributed_reference):
        cfg = config(
            partition={"n_ranks": 3},
            resilience={
                "max_restarts": 1,
                "faults": [{"kind": "crash", "rank": 0, "superstep": 2}],
            },
        )
        result = Simulation(cfg).run()
        assert np.array_equal(result.u, distributed_reference.u)
        assert result.metadata["resilience"]["checkpoints_written"] == 0

    def test_exhausted_budget_reraises(self):
        cfg = config(
            partition={"n_ranks": 2},
            resilience={
                "max_restarts": 1,
                "faults": [
                    {"kind": "crash", "rank": 0, "superstep": 1, "attempt": 0},
                    {"kind": "crash", "rank": 1, "superstep": 1, "attempt": 1},
                ],
            },
        )
        from repro.util.errors import RankFailure

        with pytest.raises(RankFailure):
            Simulation(cfg).run()

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_silent_corruption_caught_and_recovered(
        self, tmp_path, distributed_reference
    ):
        """A bit flip in a halo message (silent: the transport succeeds,
        and a ~1e300 field value is still finite) must be caught by the
        energy-growth guard within its cadence and healed by a
        supervised restart from the last good checkpoint."""
        cfg = config(
            partition={"n_ranks": 3},
            resilience={
                "checkpoint_every": 2,
                "checkpoint_dir": str(tmp_path),
                "max_restarts": 1,
                "health_check_every": 1,
                "energy_factor": 1e6,
                # bit 62 (top exponent bit): the ~1e-6 payload on the
                # 0->2 halo channel becomes ~1e302 — finite, so only
                # the energy proxy can flag it
                "faults": [
                    {
                        "kind": "bitflip", "superstep": 7,
                        "src": 0, "dst": 2, "bit": 62,
                    }
                ],
            },
        )
        result = Simulation(cfg).run()
        assert np.array_equal(result.u, distributed_reference.u)
        rmd = result.metadata["resilience"]
        assert rmd["attempts"] == 2
        assert rmd["recovery"][0]["error"] == "NumericalError"
        # caught within health_check_every (=1) cycles of the corrupted
        # superstep
        assert "cycle 8" in rmd["recovery"][0]["message"]
        assert "energy" in rmd["recovery"][0]["message"]
        assert rmd["faults_injected"][0]["kind"] == "bitflip"


def _repro(*args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    if check:
        assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc


class TestCli:
    @pytest.fixture()
    def cfg_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(BASE))
        return path

    def test_resume_round_trip(self, tmp_path, cfg_file):
        """Run with checkpointing, then resume from the mid-run file:
        identical outputs."""
        out1, out2 = tmp_path / "a.npz", tmp_path / "b.npz"
        ckdir = tmp_path / "ck"
        proc = _repro(
            "run", str(cfg_file), "--checkpoint-dir", str(ckdir),
            "--checkpoint-every", "4", "--output", str(out1),
        )
        assert "checkpoint(s) written" in proc.stdout
        proc = _repro(
            "run", str(cfg_file), "--resume", str(ckdir / "ckpt_00000004.npz"),
            "--output", str(out2),
        )
        assert "resumed from cycle 4" in proc.stdout
        a, b = np.load(out1), np.load(out2)
        assert np.array_equal(a["u"], b["u"])
        assert np.array_equal(a["traces"], b["traces"])

    def test_resume_missing_checkpoint_exits_2(self, cfg_file, tmp_path):
        proc = _repro(
            "run", str(cfg_file), "--resume", str(tmp_path / "nope.npz"),
            check=False,
        )
        assert proc.returncode == 2
        assert "not found" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_checkpoint_every_without_dir_exits_2(self, cfg_file):
        proc = _repro(
            "run", str(cfg_file), "--checkpoint-every", "3", check=False
        )
        assert proc.returncode == 2
        assert "checkpoint_dir" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_malformed_resilience_config_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({**BASE, "resilience": {"checkpoints_every": 3}})
        )
        proc = _repro("run", str(bad), check=False)
        assert proc.returncode == 2
        assert "checkpoints_every" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_output_written_atomically(self, cfg_file, tmp_path, monkeypatch):
        """A crash during --output serialization leaves no partial file
        (in-process so np.savez can be failed mid-run)."""
        out = tmp_path / "out.npz"
        monkeypatch.setattr(
            np, "savez", lambda *a, **k: (_ for _ in ()).throw(OSError("full"))
        )
        with pytest.raises(OSError):
            cli_main(["run", str(cfg_file), "--output", str(out)])
        assert not out.exists()
        assert not list(tmp_path.glob(".out.npz.*"))

    def test_validate_accepts_resilience_block(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(
            json.dumps(
                {
                    **BASE,
                    "resilience": {
                        "checkpoint_every": 2,
                        "checkpoint_dir": str(tmp_path / "ck"),
                        "health_check_every": 1,
                    },
                }
            )
        )
        proc = _repro("validate", str(path), "--print")
        assert "OK" in proc.stdout
        printed = json.loads(proc.stdout.split("\n", 1)[1])
        assert printed["resilience"]["checkpoint_every"] == 2
