"""Config-layer tests: lossless round-tripping, unknown-key/invalid-value
rejection with actionable messages, and file loading (JSON + TOML)."""

import json

import numpy as np
import pytest

from repro.api import (
    BackendSpec,
    MaterialSpec,
    MeshSpec,
    PartitionSpec,
    ReceiverSpec,
    RegionSpec,
    SimulationConfig,
    SourceSpec,
    TimeSpec,
)
from repro.sem.materials import IsotropicAcoustic, IsotropicElastic, isotropic_stiffness
from repro.util.errors import ConfigError


def full_config() -> SimulationConfig:
    """A config exercising every spec (incl. regions and tuple data)."""
    return SimulationConfig(
        name="full",
        mesh=MeshSpec("trench", {"nx": 6, "ny": 4, "nz": 2, "band_radii": [0.8, 1.8]}),
        material=MaterialSpec(
            model="elastic",
            lam=2.0,
            mu=1.0,
            rho=1.0,
            regions=(RegionSpec(values={"lam": 32.0, "mu": 16.0}, elements=(5,)),),
        ),
        order=2,
        dirichlet=True,
        time=TimeSpec(n_cycles=4, c_cfl=0.35),
        source=SourceSpec(position=(1.0, 2.0, 1.0), component=2, f0=0.5),
        receivers=ReceiverSpec(positions=((4.0, 2.0, 0.5), (5.0, 2.0, 0.5)), component=1),
        partition=PartitionSpec(n_ranks=2, strategy="SCOTCH-P", seed=3),
        backend=BackendSpec(stiffness="matfree", fused=False),
    )


class TestRoundTrip:
    def test_from_dict_to_dict_identity(self):
        cfg = full_config()
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip(self):
        cfg = full_config()
        wire = json.dumps(cfg.to_dict())
        assert SimulationConfig.from_dict(json.loads(wire)) == cfg

    def test_every_sub_spec_round_trips(self):
        cfg = full_config()
        for spec in (cfg.mesh, cfg.material, cfg.material.regions[0], cfg.time,
                     cfg.source, cfg.receivers, cfg.partition, cfg.backend):
            assert type(spec).from_dict(spec.to_dict()) == spec

    def test_numpy_arrays_freeze_to_plain_data(self):
        """Specs built from numpy arrays equal specs built from lists."""
        C = isotropic_stiffness(2.0, 1.0, 3)
        a = MaterialSpec(model="anisotropic_elastic", C=C)
        b = MaterialSpec(model="anisotropic_elastic", C=C.tolist())
        assert a == b
        assert MaterialSpec.from_dict(json.loads(json.dumps(a.to_dict()))) == a

    def test_box_region_round_trips(self):
        r = RegionSpec(values={"c": 4.0}, box=np.array([[0.0, 1.0], [0.0, 2.0]]))
        assert RegionSpec.from_dict(json.loads(json.dumps(r.to_dict()))) == r

    def test_none_source_and_receivers_round_trip(self):
        cfg = SimulationConfig(
            mesh=MeshSpec("uniform_grid", {"shape": (4, 4)}),
            time=TimeSpec(t_end=1.0),
        )
        assert cfg.source is None and cfg.receivers is None
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_nested_fields_accept_raw_mappings(self):
        cfg = SimulationConfig(
            mesh={"family": "uniform_grid", "params": {"shape": [4, 4]}},
            time={"n_cycles": 3},
            material={"model": "acoustic"},
        )
        assert isinstance(cfg.mesh, MeshSpec)
        assert cfg.time.n_cycles == 3

    def test_mapping_fields_are_read_only(self):
        """Validated specs cannot be mutated into a different config
        (they may be live cache keys)."""
        cfg = full_config()
        with pytest.raises(TypeError):
            cfg.mesh.params["nx"] = 999
        with pytest.raises(TypeError):
            cfg.material.regions[0].values["lam"] = 0.0

    def test_specs_hash_consistently_with_equality(self):
        """Configs are cache keys: equal specs hash equal, dict-field
        specs (MeshSpec.params, RegionSpec.values) included."""
        a, b = full_config(), full_config()
        assert a == b
        assert hash(a) == hash(b)
        for spec_a, spec_b in zip(
            (a.mesh, a.material, a.material.regions[0]),
            (b.mesh, b.material, b.material.regions[0]),
        ):
            assert hash(spec_a) == hash(spec_b)
        assert hash(a.mesh) != hash(MeshSpec("trench", {"nx": 7}))
        assert len({a, b}) == 1

    def test_file_round_trip_json(self, tmp_path):
        cfg = full_config()
        path = tmp_path / "cfg.json"
        cfg.save(path)
        assert SimulationConfig.from_file(path) == cfg

    def test_file_load_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "cfg.toml"
        path.write_text(
            """
            name = "toml-case"
            order = 3

            [mesh]
            family = "uniform_grid"
            [mesh.params]
            shape = [4, 4]

            [time]
            n_cycles = 5
            c_cfl = 0.4
            """
        )
        cfg = SimulationConfig.from_file(path)
        assert cfg.name == "toml-case"
        assert cfg.mesh.params["shape"] == (4, 4)
        assert cfg.time.n_cycles == 5


class TestRejection:
    def test_unknown_top_level_key_suggests_fix(self):
        with pytest.raises(ConfigError, match=r"unknown key 'mesg'.*did you mean 'mesh'"):
            SimulationConfig.from_dict({"mesg": {}, "time": {"n_cycles": 1}})

    def test_unknown_nested_key_names_the_spec(self):
        with pytest.raises(ConfigError, match=r"MeshSpec.*valid keys"):
            MeshSpec.from_dict({"family": "trench", "parms": {}})

    def test_unknown_mesh_family_lists_available(self):
        with pytest.raises(ConfigError, match=r"unknown mesh family 'trenchh'.*trench"):
            MeshSpec("trenchh")

    def test_unknown_generator_param_suggests_fix(self):
        with pytest.raises(ConfigError, match=r"did you mean 'nx'"):
            MeshSpec("trench", {"nxx": 4})

    def test_unknown_material_model(self):
        with pytest.raises(ConfigError, match="unknown material model"):
            MaterialSpec(model="viscoelastic")

    def test_material_param_wrong_model(self):
        with pytest.raises(ConfigError, match=r"model='acoustic'.*does not take 'lam'"):
            MaterialSpec(model="acoustic", lam=2.0)

    def test_anisotropic_requires_stiffness(self):
        with pytest.raises(ConfigError, match="requires C="):
            MaterialSpec(model="anisotropic_elastic")

    def test_region_needs_exactly_one_selector(self):
        with pytest.raises(ConfigError, match="exactly one selector"):
            RegionSpec(values={"c": 2.0})
        with pytest.raises(ConfigError, match="exactly one selector"):
            RegionSpec(values={"c": 2.0}, elements=(1,), box=((0, 1),))

    def test_region_override_must_match_model(self):
        with pytest.raises(ConfigError, match=r"'mu' is not a parameter.*acoustic"):
            MaterialSpec(regions=[{"elements": [0], "values": {"mu": 1.0}}])

    def test_region_bad_box(self):
        with pytest.raises(ConfigError, match=r"\(lo, hi\)"):
            RegionSpec(values={"c": 2.0}, box=(1.0, 2.0))
        with pytest.raises(ConfigError, match="lo > hi"):
            RegionSpec(values={"c": 2.0}, box=((2.0, 1.0),))

    def test_time_needs_exactly_one_duration(self):
        with pytest.raises(ConfigError, match="exactly one of n_cycles"):
            TimeSpec()
        with pytest.raises(ConfigError, match="exactly one of n_cycles"):
            TimeSpec(n_cycles=3, t_end=1.0)

    def test_time_invalid_values(self):
        with pytest.raises(ConfigError, match="c_cfl must be > 0"):
            TimeSpec(n_cycles=1, c_cfl=0.0)
        with pytest.raises(ConfigError, match="unknown scheme"):
            TimeSpec(n_cycles=1, scheme="leapfrog")
        with pytest.raises(ConfigError, match="n_cycles must be >= 1"):
            TimeSpec(n_cycles=0)

    def test_source_validation(self):
        with pytest.raises(ConfigError, match="unknown source kind"):
            SourceSpec(position=(0.0,), kind="gaussian")
        with pytest.raises(ConfigError, match="f0 must be > 0"):
            SourceSpec(position=(0.0,), f0=-1.0)
        with pytest.raises(ConfigError, match="coordinate sequence"):
            SourceSpec(position="here")

    def test_receiver_validation(self):
        with pytest.raises(ConfigError, match="non-empty sequence"):
            ReceiverSpec(positions=())
        with pytest.raises(ConfigError, match="coordinate sequence"):
            ReceiverSpec(positions=("x",))

    def test_partition_validation(self):
        with pytest.raises(ConfigError, match="n_ranks must be >= 1"):
            PartitionSpec(n_ranks=0)
        with pytest.raises(ConfigError, match=r"unknown partition strategy.*SCOTCH"):
            PartitionSpec(strategy="METIS-X")

    def test_backend_validation(self):
        with pytest.raises(ConfigError, match="unknown stiffness backend"):
            BackendSpec(stiffness="gpu")
        with pytest.raises(ConfigError, match="fused applies to the matfree"):
            BackendSpec(stiffness="assembled", fused=True)

    def test_backend_threads_validation(self):
        with pytest.raises(ConfigError, match="threads applies to the matfree"):
            BackendSpec(stiffness="assembled", threads=2)
        with pytest.raises(ConfigError, match="threads must be >= 0"):
            BackendSpec(stiffness="matfree", threads=-1)
        with pytest.raises(ConfigError, match="threads must be an integer"):
            BackendSpec(stiffness="matfree", threads=1.5)
        with pytest.raises(ConfigError, match="threads must be an integer"):
            BackendSpec(stiffness="matfree", threads=True)
        # 0 = auto-detect is valid, as is any positive count.
        assert BackendSpec(stiffness="matfree", threads=0).threads == 0
        assert BackendSpec(stiffness="matfree", threads=4).threads == 4

    def test_backend_threads_round_trip(self, tmp_path):
        cfg = SimulationConfig(
            mesh=MeshSpec("uniform_grid", {"shape": (3, 3)}),
            time=TimeSpec(n_cycles=1),
            backend=BackendSpec(stiffness="matfree", fused=False, threads=2),
        )
        back = SimulationConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back == cfg
        assert back.backend.threads == 2
        pytest.importorskip("tomllib")
        path = tmp_path / "cfg.toml"
        path.write_text(
            """
            [mesh]
            family = "uniform_grid"
            [mesh.params]
            shape = [3, 3]

            [time]
            n_cycles = 1

            [backend]
            stiffness = "matfree"
            threads = 2
            """
        )
        assert SimulationConfig.from_file(path).backend.threads == 2

    def test_order_validation(self):
        with pytest.raises(ConfigError, match="order must be >= 1"):
            SimulationConfig(
                mesh=MeshSpec("uniform_grid", {"shape": (2, 2)}),
                time=TimeSpec(n_cycles=1),
                order=0,
            )

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            SimulationConfig.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            SimulationConfig.from_file(bad)
        weird = tmp_path / "cfg.yaml"
        weird.write_text("a: 1")
        with pytest.raises(ConfigError, match="unsupported config format"):
            SimulationConfig.from_file(weird)


class TestMaterialBuild:
    def test_acoustic_defaults_to_mesh_speed(self):
        mesh = MeshSpec("uniform_grid", {"shape": (3, 3)}).build()
        mat = MaterialSpec().build(mesh)
        assert isinstance(mat, IsotropicAcoustic)
        assert np.array_equal(mat.c, mesh.c)

    def test_region_override_applies_on_selected_elements(self):
        mesh = MeshSpec("uniform_grid", {"shape": (4, 4)}).build()
        spec = MaterialSpec(
            model="elastic",
            lam=2.0,
            mu=1.0,
            regions=(RegionSpec(values={"lam": 32.0}, elements=(0, 5)),),
        )
        mat = spec.build(mesh)
        assert isinstance(mat, IsotropicElastic)
        assert mat.lam[0] == 32.0 and mat.lam[5] == 32.0
        assert np.all(mat.lam[[1, 2, 3, 4]] == 2.0)

    def test_box_region_uses_centroids(self):
        mesh = MeshSpec("uniform_grid", {"shape": (4, 1)}).build()
        spec = MaterialSpec(
            regions=(RegionSpec(values={"c": 4.0}, box=((0.0, 2.0), (0.0, 1.0))),),
        )
        mat = spec.build(mesh)
        assert np.array_equal(mat.c, [4.0, 4.0, 1.0, 1.0])

    def test_region_out_of_range_element(self):
        mesh = MeshSpec("uniform_grid", {"shape": (2, 2)}).build()
        spec = MaterialSpec(regions=(RegionSpec(values={"c": 2.0}, elements=(99,)),))
        with pytest.raises(ConfigError, match=r"outside \[0, 4\)"):
            spec.build(mesh)

    def test_empty_region_rejected(self):
        mesh = MeshSpec("uniform_grid", {"shape": (2, 2)}).build()
        spec = MaterialSpec(
            regions=(RegionSpec(values={"c": 2.0}, box=((5.0, 6.0), (5.0, 6.0))),)
        )
        with pytest.raises(ConfigError, match="selects no elements"):
            spec.build(mesh)

    def test_box_dimension_mismatch(self):
        mesh = MeshSpec("uniform_grid", {"shape": (2, 2)}).build()
        spec = MaterialSpec(regions=(RegionSpec(values={"c": 2.0}, box=((0, 1),)),))
        with pytest.raises(ConfigError, match="1 axis intervals but the mesh is 2D"):
            spec.build(mesh)

    def test_per_element_parameter_shape_mismatch(self):
        mesh = MeshSpec("uniform_grid", {"shape": (3, 3)}).build()
        with pytest.raises(ConfigError, match="per-element"):
            MaterialSpec(model="elastic", lam=(1.0, 2.0)).build(mesh)
