"""Ensemble engine acceptance: sweep expansion, stage-key grouping,
executor selection, and the bitwise warm-vs-cold contract across
dimensions, backends, and serial/distributed execution."""

import json

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.api import (
    EnsembleSpec,
    Simulation,
    SimulationConfig,
    StageCache,
    SweepSpec,
    run_ensemble,
)
from repro.util.errors import ConfigError

BASE_2D = dict(
    mesh={"family": "uniform_grid", "params": {"shape": [6, 6]}},
    material={
        "model": "acoustic",
        "regions": [{"elements": [14, 15], "values": {"c": 4.0}}],
    },
    order=3,
    time={"n_cycles": 6, "c_cfl": 0.35},
    source={"position": [1.0, 3.0], "f0": 0.8},
    receivers={"positions": [[4.0, 3.0]]},
)

BASE_3D = dict(
    mesh={
        "family": "trench",
        "params": {"nx": 6, "ny": 4, "nz": 2, "band_radii": [0.8]},
    },
    material={"model": "elastic", "lam": 2.0, "mu": 1.0},
    order=2,
    time={"n_cycles": 4, "c_cfl": 0.35},
    source={"position": [1.0, 2.0, 0.5], "component": 2, "f0": 0.5},
    receivers={"positions": [[4.0, 2.0, 0.5]], "component": 2},
)


def source_sweep(base, positions, **extra) -> EnsembleSpec:
    return EnsembleSpec.from_dict(
        {
            "name": "sweep",
            "base": base,
            "mode": "zip",
            "sweeps": [{"path": "source.position", "values": positions}],
            **extra,
        }
    )


class TestExpansion:
    def test_zip_mode(self):
        spec = source_sweep(BASE_2D, [[1.0, 3.0], [2.0, 3.0]])
        configs = spec.expand()
        assert spec.n_members == len(configs) == 2
        assert configs[0].source.position == (1.0, 3.0)
        assert configs[1].source.position == (2.0, 3.0)
        assert [c.name for c in configs] == ["sweep[0]", "sweep[1]"]
        # everything unswept is inherited
        assert configs[0].material == configs[1].material

    def test_product_mode(self):
        spec = EnsembleSpec.from_dict(
            {
                "base": BASE_2D,
                "sweeps": [
                    {"path": "source.f0", "values": [0.5, 0.8]},
                    {"path": "time.c_cfl", "values": [0.3, 0.35, 0.4]},
                ],
            }
        )
        configs = spec.expand()
        assert spec.n_members == len(configs) == 6
        assert {(c.source.f0, c.time.c_cfl) for c in configs} == {
            (f, c) for f in (0.5, 0.8) for c in (0.3, 0.35, 0.4)
        }

    def test_whole_section_sweep(self):
        spec = EnsembleSpec.from_dict(
            {
                "base": BASE_2D,
                "sweeps": [
                    {
                        "path": "backend",
                        "values": [
                            {"stiffness": "assembled"},
                            {"stiffness": "matfree"},
                        ],
                    }
                ],
            }
        )
        assert [c.backend.stiffness for c in spec.expand()] == [
            "assembled", "matfree",
        ]

    def test_round_trips_through_dicts(self):
        spec = source_sweep(BASE_2D, [[1.0, 3.0], [2.0, 3.0]])
        assert EnsembleSpec.from_dict(spec.to_dict()) == spec

    def test_zip_requires_equal_lengths(self):
        with pytest.raises(ConfigError, match="equal-length"):
            EnsembleSpec.from_dict(
                {
                    "base": BASE_2D,
                    "mode": "zip",
                    "sweeps": [
                        {"path": "source.f0", "values": [0.5, 0.8]},
                        {"path": "time.c_cfl", "values": [0.3]},
                    ],
                }
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="unknown ensemble mode"):
            source_sweep(BASE_2D, [[1.0, 3.0]], mode="outer")

    def test_missing_section_named_in_error(self):
        base = {k: v for k, v in BASE_2D.items() if k != "source"}
        spec = EnsembleSpec.from_dict(
            {
                "base": base,
                "sweeps": [{"path": "source.position", "values": [[1, 3]]}],
            }
        )
        with pytest.raises(ConfigError, match="'source' section"):
            spec.expand()

    def test_invalid_member_names_sweep_values(self):
        spec = EnsembleSpec.from_dict(
            {
                "base": BASE_2D,
                "sweeps": [{"path": "source.f0", "values": [0.8, -1.0]}],
            }
        )
        with pytest.raises(ConfigError, match="member 1"):
            spec.expand()

    def test_empty_sweeps_rejected(self):
        with pytest.raises(ConfigError, match="at least one sweep axis"):
            EnsembleSpec.from_dict({"base": BASE_2D, "sweeps": []})

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            SweepSpec(path="source.f0", values=())


class TestEngine:
    def test_members_bitwise_equal_cold_solo_runs_2d(self):
        spec = source_sweep(
            BASE_2D, [[1.0, 3.0], [2.0, 3.0], [3.0, 3.0]]
        )
        res = run_ensemble(spec, jobs=2, executor="thread")
        assert res.summary["executor"] == "thread"
        for cfg, member in zip(spec.expand(), res.members):
            solo = Simulation(cfg).run()
            assert np.array_equal(solo.u, member.u)
            assert np.array_equal(solo.traces, member.traces)

    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_members_bitwise_equal_cold_solo_runs_3d(self, backend):
        base = {**BASE_3D, "backend": {"stiffness": backend}}
        spec = source_sweep(base, [[1.0, 2.0, 0.5], [2.0, 2.0, 0.5]])
        res = run_ensemble(spec, jobs=1)
        for cfg, member in zip(spec.expand(), res.members):
            solo = Simulation(cfg).run()
            assert np.array_equal(solo.u, member.u)
            assert np.array_equal(solo.traces, member.traces)

    @pytest.mark.parametrize("backend", ["assembled", "matfree"])
    def test_distributed_members_match_solo(self, backend):
        base = {
            **BASE_2D,
            "backend": {"stiffness": backend},
            "partition": {"n_ranks": 3},
        }
        spec = source_sweep(base, [[1.0, 3.0], [2.0, 3.0]])
        res = run_ensemble(spec, jobs=1)
        assert res.summary["stage_sharing"]["parts"] == {
            "distinct": 1, "members": 2,
        }
        for cfg, member in zip(spec.expand(), res.members):
            solo = Simulation(cfg).run()
            assert member.parts is not None
            assert np.array_equal(solo.parts, member.parts)
            assert np.array_equal(solo.u, member.u)

    def test_each_distinct_stage_resolved_exactly_once(self):
        spec = source_sweep(
            BASE_2D, [[1.0, 3.0], [2.0, 3.0], [3.0, 3.0], [1.0, 2.0]]
        )
        res = run_ensemble(spec, jobs=2, executor="thread")
        r = res.summary["cache"]["resolutions"]
        assert r["mesh"] == 1
        assert r["assembler"] == 1
        assert r["levels"] == 1
        assert res.summary["stage_sharing"]["assembler"] == {
            "distinct": 1, "members": 4,
        }

    def test_per_member_metadata_and_streaming(self):
        spec = source_sweep(BASE_2D, [[1.0, 3.0], [2.0, 3.0]])
        seen = []
        res = run_ensemble(spec, jobs=1, on_result=seen.append)
        assert [r.metadata["member"]["index"] for r in seen] == [0, 1]
        for i, member in enumerate(res.members):
            md = member.metadata["member"]
            assert md["index"] == i
            assert md["name"] == f"sweep[{i}]"
            assert md["seconds"] > 0
        assert res.members[1].metadata["member"]["cache_hits"] > 0
        assert res.summary["n_members"] == 2
        assert res.summary["throughput_members_per_second"] > 0

    def test_warm_disk_cache_replay_is_bitwise(self, tmp_path):
        spec = source_sweep(BASE_2D, [[1.0, 3.0], [2.0, 3.0]])
        cold = run_ensemble(spec, jobs=1, cache_dir=tmp_path)
        warm = run_ensemble(spec, jobs=1, cache_dir=tmp_path)
        assert warm.summary["cache"]["disk_hits"] >= 2  # assembler + levels
        assert "assembler" not in warm.summary["cache"]["resolutions"]
        for a, b in zip(cold.members, warm.members):
            assert np.array_equal(a.u, b.u)
            assert np.array_equal(a.traces, b.traces)

    def test_process_executor_members_match_solo(self, tmp_path):
        spec = source_sweep(BASE_2D, [[1.0, 3.0], [2.0, 3.0]])
        res = run_ensemble(spec, jobs=2, executor="process", cache_dir=tmp_path)
        assert res.summary["executor"] == "process"
        for cfg, member in zip(spec.expand(), res.members):
            solo = Simulation(cfg).run()
            assert np.array_equal(solo.u, member.u)
            assert member.metadata["member"]["seconds"] > 0

    def test_auto_executor_selection(self):
        spec = source_sweep(
            {**BASE_2D, "backend": {"stiffness": "matfree"}}, [[1.0, 3.0]]
        )
        assert run_ensemble(spec, jobs=1).summary["executor"] == "serial"
        spec2 = source_sweep(
            {**BASE_2D, "backend": {"stiffness": "matfree"}},
            [[1.0, 3.0], [2.0, 3.0]],
        )
        assert (
            run_ensemble(spec2, jobs=2).summary["executor"] == "thread"
        )

    def test_plain_config_list_accepted(self):
        configs = [
            SimulationConfig.from_dict(BASE_2D),
            SimulationConfig.from_dict({**BASE_2D, "order": 4}),
        ]
        res = run_ensemble(configs, jobs=1)
        assert res.spec is None and len(res.members) == 2
        # different order -> nothing shared past the material stage
        assert res.summary["stage_sharing"]["assembler"]["distinct"] == 2

    def test_shared_cache_instance_reused(self):
        cache = StageCache()
        spec = source_sweep(BASE_2D, [[1.0, 3.0]])
        run_ensemble(spec, cache=cache)
        before = cache.stats.resolutions["assembler"]
        run_ensemble(spec, cache=cache)
        assert cache.stats.resolutions["assembler"] == before

    def test_bad_args_rejected(self):
        spec = source_sweep(BASE_2D, [[1.0, 3.0]])
        with pytest.raises(ConfigError, match="jobs"):
            run_ensemble(spec, jobs=0)
        with pytest.raises(ConfigError, match="executor"):
            run_ensemble(spec, executor="gpu")
        with pytest.raises(ConfigError, match="not both"):
            run_ensemble(spec, cache=StageCache(), cache_dir="/tmp/x")
        with pytest.raises(ConfigError, match="at least one member"):
            run_ensemble([])

    def test_member_failure_propagates(self):
        # receivers off the mesh dimension fail at run time; the
        # ensemble surfaces the member's error instead of hanging.
        bad = {**BASE_2D, "receivers": {"positions": [[1.0, 2.0, 3.0]]}}
        spec = source_sweep(bad, [[1.0, 3.0], [2.0, 3.0]])
        with pytest.raises(ConfigError, match="coordinates"):
            run_ensemble(spec, jobs=2, executor="thread")


class TestEnsembleCLI:
    def test_cli_runs_sweep_and_writes_outputs(self, tmp_path, capsys):
        sweep = {
            "name": "cli-sweep",
            "base": BASE_2D,
            "mode": "zip",
            "sweeps": [
                {"path": "source.position", "values": [[1.0, 3.0], [2.0, 3.0]]}
            ],
        }
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps(sweep))
        out_dir = tmp_path / "out"
        rc = cli_main(
            [
                "ensemble", str(sweep_file),
                "--jobs", "2",
                "--executor", "thread",
                "--cache-dir", str(tmp_path / "cache"),
                "--output-dir", str(out_dir),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 members" in text and "cache:" in text
        assert (out_dir / "member_000.npz").exists()
        assert (out_dir / "member_001.npz").exists()
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["n_members"] == 2
        assert summary["cache_hits"] > 0
        member = np.load(out_dir / "member_000.npz")
        cfg = SimulationConfig.from_dict(
            json.loads(str(member["config_json"]))
        )
        solo = Simulation(cfg).run()
        assert np.array_equal(solo.u, member["u"])

    def test_cli_rejects_bad_sweep(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"base": BASE_2D, "sweeps": []}))
        assert cli_main(["ensemble", str(bad)]) == 2
        assert "sweep axis" in capsys.readouterr().err
