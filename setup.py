"""Shim for legacy editable installs; all metadata is in pyproject.toml."""
from setuptools import setup

setup()
